//! Shared run infrastructure: settings (scale, simulated durations, sweep
//! rates), single-point runners for each workload family, and a parallel
//! sweep helper.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use tpsim::presets::{self, DebitCreditStorage, LogVariant, SecondLevel, TraceStorage};
use tpsim::{KernelProfile, Simulation, SimulationConfig, SimulationReport};

use lockmgr::CcMode;
use tpsim::presets::ContentionAllocation;

/// How large and how long the experiment runs are.
#[derive(Debug, Clone)]
pub struct RunSettings {
    /// Scale-down factor of the Debit-Credit database (1 = the paper's 50 M
    /// accounts).
    pub debit_credit_scale: u64,
    /// Scale-down factor of the synthetic trace (1 = the paper's ≈1 M
    /// references).
    pub trace_scale: usize,
    /// Warm-up interval per run (ms of simulated time).
    pub warmup_ms: f64,
    /// Measurement interval per run (ms of simulated time).
    pub measure_ms: f64,
    /// Arrival rates (TPS) for the response-time-vs-throughput figures.
    pub rates: Vec<f64>,
    /// Arrival rate used for the caching experiments (the paper uses 500 TPS).
    pub caching_rate: f64,
    /// Arrival rate used for the trace experiments.
    pub trace_rate: f64,
    /// Arrival rate used for the restart-time experiment (moderate enough
    /// that neither log variant saturates, so the variants reach equal
    /// throughput and only restart time diverges).
    pub recovery_rate: f64,
    /// Run the points of a sweep on multiple threads.
    pub parallel: bool,
    /// Worker threads for parallel sweeps (0 = one per available core).
    pub threads: usize,
    /// Worker threads of the sharded event kernel *inside* each simulation
    /// (`SimulationConfig::parallelism`); 0/1 = the sequential kernel.
    /// Reports are byte-identical for every value — this only trades
    /// sweep-level for run-level parallelism, which pays off when a sweep has
    /// fewer points than the host has cores (e.g. one big multi-node run).
    pub kernel_threads: usize,
}

impl RunSettings {
    /// Full-scale settings: the paper's database sizes and arrival rates.
    /// A complete regeneration of all experiments takes tens of minutes.
    pub fn full() -> Self {
        Self {
            debit_credit_scale: 1,
            trace_scale: 1,
            warmup_ms: 3_000.0,
            measure_ms: 20_000.0,
            rates: vec![10.0, 100.0, 200.0, 300.0, 400.0, 500.0, 600.0, 700.0],
            caching_rate: 500.0,
            trace_rate: 40.0,
            recovery_rate: 150.0,
            parallel: true,
            threads: 0,
            kernel_threads: 0,
        }
    }

    /// Reduced settings: a scaled-down database and shorter simulated
    /// intervals.  The qualitative shape of every figure is preserved; a full
    /// regeneration takes a few minutes.
    pub fn standard() -> Self {
        Self {
            debit_credit_scale: 20,
            trace_scale: 4,
            warmup_ms: 1_500.0,
            measure_ms: 8_000.0,
            rates: vec![10.0, 100.0, 200.0, 300.0, 400.0, 500.0, 600.0, 700.0],
            caching_rate: 500.0,
            trace_rate: 40.0,
            recovery_rate: 150.0,
            parallel: true,
            threads: 0,
            kernel_threads: 0,
        }
    }

    /// Minimal settings for smoke tests and Criterion benches.
    pub fn quick() -> Self {
        Self {
            debit_credit_scale: 200,
            trace_scale: 10,
            warmup_ms: 300.0,
            measure_ms: 1_500.0,
            rates: vec![50.0, 200.0, 500.0],
            caching_rate: 200.0,
            trace_rate: 25.0,
            recovery_rate: 150.0,
            parallel: true,
            threads: 0,
            kernel_threads: 0,
        }
    }

    fn apply(&self, mut config: SimulationConfig) -> SimulationConfig {
        config.warmup_ms = self.warmup_ms;
        config.measure_ms = self.measure_ms;
        config.parallelism.kernel_threads = self.kernel_threads;
        config
    }
}

/// One point of a sweep: an x value (arrival rate, buffer size, ...), a label
/// and the simulation report.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Series label (e.g. the storage allocation).
    pub series: String,
    /// X value of the point.
    pub x: f64,
    /// The simulation result.
    pub report: SimulationReport,
}

/// A sweep point plus the kernel's wall-clock profile for it (`--profile`
/// mode of the sweep runner).
#[derive(Debug, Clone)]
pub struct ProfiledSweepPoint {
    /// The simulated point.
    pub point: SweepPoint,
    /// Wall-clock ms and events/sec of the run that produced it.
    pub profile: KernelProfile,
}

/// Runs one Debit-Credit point.
pub fn run_debit_credit(settings: &RunSettings, config: SimulationConfig) -> SimulationReport {
    run_point_profiled(settings, config, Family::DebitCredit).0
}

/// Runs one trace-replay point.
pub fn run_trace(settings: &RunSettings, config: SimulationConfig) -> SimulationReport {
    run_point_profiled(settings, config, Family::Trace).0
}

/// Runs one lock-contention point.
pub fn run_contention(settings: &RunSettings, config: SimulationConfig) -> SimulationReport {
    run_point_profiled(settings, config, Family::Contention).0
}

/// Where in the measurement interval the recovery experiments crash the
/// system (fraction of `measure_ms` after the warm-up).  Late enough that a
/// realistic redo distance accumulates, strictly before the end of the run.
pub const CRASH_AT_FRACTION: f64 = 0.9;

/// Runs one Debit-Credit point with a simulated crash at
/// [`CRASH_AT_FRACTION`] of the measurement interval, producing a report
/// with a restart section.
pub fn run_recovery_crash(settings: &RunSettings, config: SimulationConfig) -> SimulationReport {
    run_point_profiled(settings, config, Family::RecoveryCrash).0
}

/// Runs one point of the given workload family, also measuring the kernel's
/// wall-clock event throughput (the `--profile` substrate: every profiled
/// sweep and the perf-smoke suite go through here).
pub fn run_point_profiled(
    settings: &RunSettings,
    config: SimulationConfig,
    family: Family,
) -> (SimulationReport, KernelProfile) {
    let config = settings.apply(config);
    match family {
        Family::DebitCredit => {
            let workload = presets::debit_credit_workload(settings.debit_credit_scale);
            Simulation::new(config, workload).run_profiled()
        }
        Family::Trace => {
            let workload = presets::trace_workload(settings.trace_scale, 7);
            Simulation::new(config, workload).run_profiled()
        }
        Family::Contention => {
            Simulation::new(config, presets::contention_workload()).run_profiled()
        }
        Family::RecoveryCrash => {
            let crash_at = config.warmup_ms + CRASH_AT_FRACTION * config.measure_ms;
            let workload = presets::debit_credit_workload(settings.debit_credit_scale);
            Simulation::new(config, workload)
                .simulate_crash_at(crash_at)
                .run_profiled()
        }
    }
}

/// Which workload family a sweep point belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Debit-Credit (§4.2–§4.5).
    DebitCredit,
    /// Trace replay (§4.6).
    Trace,
    /// Synthetic contention workload (§4.7).
    Contention,
    /// Debit-Credit with a simulated crash at [`CRASH_AT_FRACTION`] of the
    /// measurement interval (the restart-time experiment, `fig6.x`).
    RecoveryCrash,
}

/// Derives the RNG seed of sweep point `index` from the configuration's base
/// seed.
///
/// Every point of a sweep gets its own decorrelated random stream, and the
/// derivation depends only on `(base seed, point index)` — never on thread
/// count or scheduling — so a parallel sweep is byte-identical to the serial
/// one.
pub fn derive_run_seed(base: u64, index: u64) -> u64 {
    // The kernel's canonical splitmix64 mixer over the (base, index) pair.
    simkernel::rng::mix64(base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Runs a set of `(series, x, config, family)` points, in parallel when the
/// settings allow it, preserving the input order in the output.
///
/// Each point runs as an independent simulation with a per-point seed derived
/// by [`derive_run_seed`]; the points are distributed over a scoped thread
/// pool with work stealing, and the output order (and every report in it) is
/// identical to a serial run of the same points.
pub fn run_sweep(
    settings: &RunSettings,
    points: Vec<(String, f64, SimulationConfig, Family)>,
) -> Vec<SweepPoint> {
    run_sweep_profiled(settings, points)
        .into_iter()
        .map(|p| p.point)
        .collect()
}

/// [`run_sweep`] with per-point kernel profiles: every report is accompanied
/// by the wall-clock ms and events/sec of the run that produced it.  The
/// reports (and their order) are identical to [`run_sweep`]'s; only the
/// wall-clock measurements differ run to run.
pub fn run_sweep_profiled(
    settings: &RunSettings,
    points: Vec<(String, f64, SimulationConfig, Family)>,
) -> Vec<ProfiledSweepPoint> {
    let jobs: Vec<(String, f64, SimulationConfig, Family)> = points
        .into_iter()
        .enumerate()
        .map(|(i, (series, x, mut config, family))| {
            config.seed = derive_run_seed(config.seed, i as u64);
            (series, x, config, family)
        })
        .collect();
    let run_one = |(series, x, config, family): (String, f64, SimulationConfig, Family)| {
        let (report, profile) = run_point_profiled(settings, config, family);
        ProfiledSweepPoint {
            point: SweepPoint { series, x, report },
            profile,
        }
    };
    if !settings.parallel || jobs.len() <= 1 {
        return jobs.into_iter().map(run_one).collect();
    }
    let threads = if settings.threads > 0 {
        settings.threads
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    }
    .min(jobs.len());
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<ProfiledSweepPoint>>> =
        jobs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(i) else { break };
                let point = run_one(job.clone());
                *slots[i].lock().expect("sweep slot poisoned") = Some(point);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("sweep slot poisoned")
                .expect("sweep worker skipped a point")
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Convenience constructors for the configurations of each experiment,
// re-exported for the Criterion benches.
// ---------------------------------------------------------------------------

/// Configuration of one Fig. 4.1 point.
pub fn fig4_1_point(variant: LogVariant, rate: f64) -> SimulationConfig {
    presets::log_allocation_config(variant, rate)
}

/// Configuration of one Fig. 4.2 point (NOFORCE).
pub fn fig4_2_point(storage: DebitCreditStorage, rate: f64) -> SimulationConfig {
    presets::debit_credit_config(storage, rate)
}

/// Configuration of one Fig. 4.3 point.
pub fn fig4_3_point(storage: DebitCreditStorage, force: bool, rate: f64) -> SimulationConfig {
    let mut c = presets::debit_credit_config(storage, rate);
    if force {
        c.buffer.update_strategy = bufmgr::UpdateStrategy::Force;
    }
    c
}

/// Configuration of one Fig. 4.4 / Fig. 4.5 / Table 4.2 point.
pub fn caching_point(
    mm_pages: usize,
    second_level: SecondLevel,
    force: bool,
    rate: f64,
) -> SimulationConfig {
    presets::caching_config(mm_pages, second_level, force, rate)
}

/// Configuration of one Fig. 4.6 / Fig. 4.7 point.
pub fn trace_point(mm_pages: usize, storage: TraceStorage, rate: f64) -> SimulationConfig {
    presets::trace_config(mm_pages, storage, rate)
}

/// Configuration of one Fig. 4.8 point.
pub fn fig4_8_point(
    allocation: ContentionAllocation,
    granularity: CcMode,
    rate: f64,
) -> SimulationConfig {
    presets::contention_config(allocation, granularity, rate)
}

/// Configuration of one multi-node scaling point (`fig5_x_node_scaling`):
/// `num_nodes` computing modules sharing the storage complex, offered
/// `per_node_rate` TPS per node.
pub fn data_sharing_point(num_nodes: usize, per_node_rate: f64) -> SimulationConfig {
    presets::data_sharing_config(num_nodes, per_node_rate * num_nodes as f64)
}

/// Configuration of one coherence-policy point (`fig8.x`): the fig5.x
/// data-sharing workload under an explicit coherence protocol / page-transfer
/// combination.
pub fn coherence_point(
    num_nodes: usize,
    per_node_rate: f64,
    coherence: tpsim::CoherenceParams,
) -> SimulationConfig {
    let mut c = data_sharing_point(num_nodes, per_node_rate);
    c.coherence = coherence;
    c
}

/// Configuration of one I/O-scheduler-policy point (`fig11.x`): the fig5.x
/// data-sharing workload with an explicit per-device request-scheduler
/// policy, optionally with the log moved to NVEM so the log disk stops
/// masking the data-disk read queue.
pub fn scheduler_point(
    num_nodes: usize,
    per_node_rate: f64,
    params: storage::IoSchedulerParams,
    nvem_log: bool,
) -> SimulationConfig {
    let mut c = data_sharing_point(num_nodes, per_node_rate);
    c.io_scheduler = params;
    if nvem_log {
        c.log_allocation = tpsim::LogAllocation::Nvem;
    }
    c
}

/// Configuration of one shared-nothing scaling point
/// (`fig7_architecture_compare` / `fig7.x`): the same workload as
/// [`data_sharing_point`] on the partitioned (function-shipping)
/// architecture.
pub fn shared_nothing_point(num_nodes: usize, per_node_rate: f64) -> SimulationConfig {
    presets::shared_nothing_config(num_nodes, per_node_rate * num_nodes as f64)
}

/// Configuration of one open-system workload point (`fig10.x`): the fig7.x
/// architecture-comparison workload under a shaped arrival process
/// (time-varying rate schedule) and/or hot-spot-skewed page accesses.
/// Shaped runs carry the tail-latency section (`report.tail`) with the
/// percentiles read from the merged per-node quantile sketches.
pub fn workload_point(
    shared_nothing: bool,
    num_nodes: usize,
    per_node_rate: f64,
    workload: tpsim::WorkloadParams,
) -> SimulationConfig {
    let mut c = if shared_nothing {
        shared_nothing_point(num_nodes, per_node_rate)
    } else {
        data_sharing_point(num_nodes, per_node_rate)
    };
    c.workload = workload;
    c
}

/// Configuration of one restart-time point (`fig6_restart_time` / `fig6.x`):
/// FORCE vs NOFORCE × disk- vs NVEM-resident log × checkpoint interval.
pub fn recovery_point(
    force: bool,
    nvem_log: bool,
    checkpoint_interval_ms: f64,
    rate: f64,
) -> SimulationConfig {
    presets::recovery_config(force, nvem_log, checkpoint_interval_ms, rate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_settings_run_a_small_sweep() {
        let settings = RunSettings::quick();
        let points = vec![
            (
                "disk".to_string(),
                50.0,
                fig4_2_point(DebitCreditStorage::Disk, 50.0),
                Family::DebitCredit,
            ),
            (
                "nvem".to_string(),
                50.0,
                fig4_2_point(DebitCreditStorage::NvemResident, 50.0),
                Family::DebitCredit,
            ),
        ];
        let results = run_sweep(&settings, points);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].series, "disk");
        assert!(results[0].report.completed > 0);
        assert!(results[1].report.response_time.mean < results[0].report.response_time.mean);
    }

    #[test]
    fn sequential_and_parallel_sweeps_agree() {
        let mut settings = RunSettings::quick();
        let mk_points = || {
            vec![
                (
                    "a".to_string(),
                    100.0,
                    fig4_2_point(DebitCreditStorage::Ssd, 100.0),
                    Family::DebitCredit,
                ),
                (
                    "b".to_string(),
                    100.0,
                    fig4_2_point(DebitCreditStorage::Disk, 100.0),
                    Family::DebitCredit,
                ),
            ]
        };
        settings.parallel = false;
        let seq = run_sweep(&settings, mk_points());
        settings.parallel = true;
        settings.threads = 2;
        let par = run_sweep(&settings, mk_points());
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(par.iter()) {
            assert_eq!(s.series, p.series);
            // Byte-identical: the full report must match, not just summaries.
            assert_eq!(s.report, p.report);
        }
    }

    #[test]
    fn multi_node_sweep_is_deterministic_across_parallelism() {
        // Extends the parallel-equals-serial guarantee to the NodeParams
        // dimension: the points of a node-count sweep must be byte-identical
        // however they are scheduled.
        let mut settings = RunSettings::quick();
        let mk_points = || {
            [1usize, 2, 4]
                .iter()
                .map(|&n| {
                    (
                        format!("{n}-node"),
                        n as f64,
                        data_sharing_point(n, 60.0),
                        Family::DebitCredit,
                    )
                })
                .collect::<Vec<_>>()
        };
        settings.parallel = false;
        let seq = run_sweep(&settings, mk_points());
        settings.parallel = true;
        settings.threads = 3;
        let par = run_sweep(&settings, mk_points());
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(par.iter()) {
            assert_eq!(s.report, p.report);
            assert_eq!(s.report.nodes.len(), s.x as usize);
        }
    }

    #[test]
    fn sharded_kernel_nested_in_parallel_sweep_is_byte_identical() {
        // The two parallelism levels compose: sweep workers on the outside,
        // sharded event kernels inside each run.  Every combination must
        // reproduce the fully serial sweep byte for byte.
        let mk_points = || {
            [2usize, 4]
                .iter()
                .map(|&n| {
                    (
                        format!("{n}-node"),
                        n as f64,
                        data_sharing_point(n, 120.0),
                        Family::DebitCredit,
                    )
                })
                .collect::<Vec<_>>()
        };
        let mut settings = RunSettings::quick();
        settings.parallel = false;
        settings.kernel_threads = 0;
        let oracle = run_sweep(&settings, mk_points());
        for (parallel, kernel_threads) in [(false, 4), (true, 4), (true, 2)] {
            settings.parallel = parallel;
            settings.threads = 2;
            settings.kernel_threads = kernel_threads;
            let nested = run_sweep(&settings, mk_points());
            assert_eq!(oracle.len(), nested.len());
            for (s, p) in oracle.iter().zip(nested.iter()) {
                assert_eq!(
                    s.report, p.report,
                    "sweep(parallel={parallel}) x kernel_threads={kernel_threads} \
                     diverged on '{}'",
                    s.series
                );
            }
        }
    }

    #[test]
    fn shaped_workload_sweep_is_deterministic_across_parallelism() {
        // Extends the parallel-equals-serial guarantee to the workload-engine
        // dimension: points with a time-varying arrival schedule and hot-spot
        // skew must be byte-identical however the sweep is scheduled, and
        // must carry the tail-latency section.
        let mut settings = RunSettings::quick();
        let mk_points = || {
            let mut burst = tpsim::WorkloadParams::skewed(0.9, 0.2);
            burst.schedule = tpsim::WorkloadSchedule::Burst {
                period_ms: 400.0,
                burst_fraction: 0.25,
                burst_factor: 4.0,
            };
            vec![
                (
                    "skew/sharing".to_string(),
                    120.0,
                    workload_point(false, 2, 60.0, tpsim::WorkloadParams::skewed(0.9, 0.2)),
                    Family::DebitCredit,
                ),
                (
                    "burst/nothing".to_string(),
                    120.0,
                    workload_point(true, 2, 60.0, burst),
                    Family::DebitCredit,
                ),
            ]
        };
        settings.parallel = false;
        let seq = run_sweep(&settings, mk_points());
        settings.parallel = true;
        settings.threads = 2;
        let par = run_sweep(&settings, mk_points());
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(par.iter()) {
            assert_eq!(s.report, p.report);
            let tail = s.report.tail.expect("shaped run carries the tail section");
            assert!(tail.count > 0);
            assert!(tail.p50 <= tail.p99 && tail.p99 <= tail.p999);
        }
    }

    #[test]
    fn per_run_seeds_are_deterministic_and_decorrelated() {
        assert_eq!(derive_run_seed(1, 0), derive_run_seed(1, 0));
        assert_ne!(derive_run_seed(1, 0), derive_run_seed(1, 1));
        assert_ne!(derive_run_seed(1, 0), derive_run_seed(2, 0));
    }
}
