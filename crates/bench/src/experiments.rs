//! The experiment definitions: one function per table/figure of the paper,
//! each returning a formatted text table with the regenerated series.

use std::fmt::Write as _;

use lockmgr::CcMode;
use tpsim::presets::{
    ContentionAllocation, DebitCreditStorage, LogVariant, SecondLevel, TraceStorage, DB_UNIT,
};
use tpsim::tables;
use tpsim::{CoherenceParams, WorkloadParams, WorkloadSchedule};

use crate::runner::{
    self, caching_point, fig4_1_point, fig4_2_point, fig4_3_point, fig4_8_point, trace_point,
    Family, RunSettings, SweepPoint,
};

/// Identifier and human-readable title of one experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Experiment {
    /// Short id used on the command line (e.g. "fig4.1").
    pub id: &'static str,
    /// Title as in the paper.
    pub title: &'static str,
}

/// The result of regenerating one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// The experiment that was run.
    pub experiment: Experiment,
    /// Formatted text table (also embedded into `EXPERIMENTS.md`).
    pub table: String,
}

/// Every experiment of the paper, in paper order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "table2.1",
            title: "Table 2.1: storage cost and access times",
        },
        Experiment {
            id: "table2.2",
            title: "Table 2.2: usage forms of intermediate storage types",
        },
        Experiment {
            id: "fig4.1",
            title: "Fig. 4.1: influence of log file allocation (Debit-Credit, NOFORCE)",
        },
        Experiment {
            id: "fig4.2",
            title: "Fig. 4.2: impact of database allocation (Debit-Credit, NOFORCE)",
        },
        Experiment {
            id: "fig4.3",
            title: "Fig. 4.3: FORCE vs NOFORCE (Debit-Credit)",
        },
        Experiment {
            id: "fig4.4",
            title: "Fig. 4.4: caching for different main-memory buffer sizes (NOFORCE)",
        },
        Experiment {
            id: "table4.2",
            title: "Table 4.2: main memory and 2nd-level cache hit ratios",
        },
        Experiment {
            id: "fig4.5",
            title: "Fig. 4.5: caching for different 2nd-level buffer sizes (NOFORCE)",
        },
        Experiment {
            id: "fig4.6",
            title: "Fig. 4.6: impact of main-memory buffer size for real-life workload",
        },
        Experiment {
            id: "fig4.7",
            title: "Fig. 4.7: impact of 2nd-level buffer size for real-life workload",
        },
        Experiment {
            id: "fig4.8",
            title: "Fig. 4.8: page- vs object-locking for different allocation strategies",
        },
        Experiment {
            id: "fig5.x",
            title: "Fig. 5.x: multi-node data-sharing scaling (beyond the paper)",
        },
        Experiment {
            id: "fig6.x",
            title: "Fig. 6.x: restart time after a crash (beyond the paper)",
        },
        Experiment {
            id: "fig7.x",
            title: "Fig. 7.x: data sharing vs shared nothing (beyond the paper)",
        },
        Experiment {
            id: "fig8.x",
            title: "Fig. 8.x: coherence protocol and page-transfer policy (beyond the paper)",
        },
        Experiment {
            id: "fig10.x",
            title: "Fig. 10.x: tail latency vs load under skew and bursts (beyond the paper)",
        },
        Experiment {
            id: "fig11.x",
            title: "Fig. 11.x: per-device I/O request scheduling (beyond the paper)",
        },
    ]
}

/// Runs one experiment by id.  Panics on an unknown id.
pub fn run_experiment(id: &str, settings: &RunSettings) -> ExperimentResult {
    let experiment = all_experiments()
        .into_iter()
        .find(|e| e.id == id)
        .unwrap_or_else(|| panic!("unknown experiment id {id}"));
    let table = match id {
        "table2.1" => table_2_1(),
        "table2.2" => table_2_2(),
        "fig4.1" => fig4_1(settings),
        "fig4.2" => fig4_2(settings),
        "fig4.3" => fig4_3(settings),
        "fig4.4" => fig4_4(settings),
        "table4.2" => table_4_2(settings),
        "fig4.5" => fig4_5(settings),
        "fig4.6" => fig4_6(settings),
        "fig4.7" => fig4_7(settings),
        "fig4.8" => fig4_8(settings),
        "fig5.x" => fig5_x(settings),
        "fig6.x" => fig6_x(settings),
        "fig7.x" => fig7_x(settings),
        "fig8.x" => fig8_x(settings),
        "fig10.x" => fig10_x(settings),
        "fig11.x" => fig11_x(settings),
        _ => unreachable!(),
    };
    ExperimentResult { experiment, table }
}

// ---------------------------------------------------------------------------
// Formatting helpers
// ---------------------------------------------------------------------------

/// Formats a response-time-vs-arrival-rate sweep as one row per series with
/// one column per rate.
fn format_rate_table(points: &[SweepPoint], rates: &[f64], value: &str) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{:<46}",
        format!("series \\ arrival rate [TPS] ({value})")
    );
    for r in rates {
        let _ = write!(out, "{:>10.0}", r);
    }
    let _ = writeln!(out);
    let mut series: Vec<&str> = Vec::new();
    for p in points {
        if !series.contains(&p.series.as_str()) {
            series.push(&p.series);
        }
    }
    for s in series {
        let _ = write!(out, "{:<46}", s);
        for r in rates {
            let point = points
                .iter()
                .find(|p| p.series == s && (p.x - r).abs() < 1e-9);
            match point {
                Some(p) => {
                    let _ = write!(out, "{:>10.2}", p.report.response_time.mean);
                }
                None => {
                    let _ = write!(out, "{:>10}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Formats a generic x-sweep (buffer sizes) of response times.
fn format_x_table(points: &[SweepPoint], xs: &[usize], x_name: &str) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{:<46}",
        format!("series \\ {x_name} (mean response [ms])")
    );
    for x in xs {
        let _ = write!(out, "{:>10}", x);
    }
    let _ = writeln!(out);
    let mut series: Vec<&str> = Vec::new();
    for p in points {
        if !series.contains(&p.series.as_str()) {
            series.push(&p.series);
        }
    }
    for s in series {
        let _ = write!(out, "{:<46}", s);
        for x in xs {
            let point = points
                .iter()
                .find(|p| p.series == s && (p.x - *x as f64).abs() < 1e-9);
            match point {
                Some(p) => {
                    let _ = write!(out, "{:>10.2}", p.report.response_time.mean);
                }
                None => {
                    let _ = write!(out, "{:>10}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

// ---------------------------------------------------------------------------
// Table 2.1 / 2.2 (static)
// ---------------------------------------------------------------------------

fn table_2_1() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<26} {:>22} {:>26}",
        "storage type", "price per MB [$]", "access time per 4KB page"
    );
    for row in tables::table_2_1() {
        let price = if row.price_per_mb.0.is_nan() {
            "?".to_string()
        } else {
            format!("{:.0} - {:.0}", row.price_per_mb.0, row.price_per_mb.1)
        };
        let access = if row.access_time_ms.1 < 1.0 {
            format!(
                "{:.0} - {:.0} microsec",
                row.access_time_ms.0 * 1000.0,
                row.access_time_ms.1 * 1000.0
            )
        } else {
            format!(
                "{:.0} - {:.0} ms",
                row.access_time_ms.0, row.access_time_ms.1
            )
        };
        let _ = writeln!(out, "{:<26} {:>22} {:>26}", row.storage, price, access);
    }
    out
}

fn table_2_2() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<34} {:>16} {:>14} {:>16}",
        "storage type", "resident files", "write buffer", "database buffer"
    );
    let yn = |b: bool| if b { "+" } else { "-" };
    for row in tables::table_2_2() {
        let _ = writeln!(
            out,
            "{:<34} {:>16} {:>14} {:>16}",
            row.storage,
            yn(row.resident_files),
            yn(row.write_buffer),
            yn(row.database_buffer)
        );
    }
    out
}

// ---------------------------------------------------------------------------
// Fig. 4.1 — log allocation
// ---------------------------------------------------------------------------

fn fig4_1(settings: &RunSettings) -> String {
    let mut points = Vec::new();
    for variant in LogVariant::ALL {
        for &rate in &settings.rates {
            points.push((
                variant.label().to_string(),
                rate,
                fig4_1_point(variant, rate),
                Family::DebitCredit,
            ));
        }
    }
    let results = runner::run_sweep(settings, points);
    let mut out = format_rate_table(&results, &settings.rates, "mean response [ms]");
    let _ = writeln!(out);
    let _ = writeln!(out, "throughput [TPS] per series:");
    out.push_str(&format_throughput(&results, &settings.rates));
    out
}

fn format_throughput(points: &[SweepPoint], rates: &[f64]) -> String {
    let mut out = String::new();
    let mut series: Vec<&str> = Vec::new();
    for p in points {
        if !series.contains(&p.series.as_str()) {
            series.push(&p.series);
        }
    }
    let _ = write!(out, "{:<46}", "series \\ arrival rate [TPS]");
    for r in rates {
        let _ = write!(out, "{:>10.0}", r);
    }
    let _ = writeln!(out);
    for s in series {
        let _ = write!(out, "{:<46}", s);
        for r in rates {
            let point = points
                .iter()
                .find(|p| p.series == s && (p.x - r).abs() < 1e-9);
            match point {
                Some(p) => {
                    let _ = write!(out, "{:>10.1}", p.report.throughput_tps);
                }
                None => {
                    let _ = write!(out, "{:>10}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

// ---------------------------------------------------------------------------
// Fig. 4.2 / 4.3 — database allocation and update strategy
// ---------------------------------------------------------------------------

fn fig4_2(settings: &RunSettings) -> String {
    let mut points = Vec::new();
    for storage in DebitCreditStorage::ALL {
        for &rate in &settings.rates {
            points.push((
                storage.label().to_string(),
                rate,
                fig4_2_point(storage, rate),
                Family::DebitCredit,
            ));
        }
    }
    let results = runner::run_sweep(settings, points);
    format_rate_table(&results, &settings.rates, "mean response [ms]")
}

fn fig4_3(settings: &RunSettings) -> String {
    let storages = [
        DebitCreditStorage::Disk,
        DebitCreditStorage::DiskWithNvCacheWriteBuffer,
        DebitCreditStorage::NvemResident,
    ];
    let mut points = Vec::new();
    for storage in storages {
        for force in [true, false] {
            let label = format!(
                "{}: {}",
                if force { "FORCE" } else { "NOFORCE" },
                storage.label()
            );
            for &rate in &settings.rates {
                points.push((
                    label.clone(),
                    rate,
                    fig4_3_point(storage, force, rate),
                    Family::DebitCredit,
                ));
            }
        }
    }
    let results = runner::run_sweep(settings, points);
    format_rate_table(&results, &settings.rates, "mean response [ms]")
}

// ---------------------------------------------------------------------------
// Fig. 4.4 / 4.5 and Table 4.2 — multi-level caching for Debit-Credit
// ---------------------------------------------------------------------------

fn caching_series() -> Vec<(String, SecondLevel)> {
    vec![
        ("MM caching only".to_string(), SecondLevel::None),
        (
            "vol. disk cache (1000)".to_string(),
            SecondLevel::VolatileDiskCache(1_000),
        ),
        (
            "write buffer in nv cache".to_string(),
            SecondLevel::DiskCacheWriteBufferOnly,
        ),
        (
            "nv disk cache (1000)".to_string(),
            SecondLevel::NonVolatileDiskCache(1_000),
        ),
        ("NVEM buffer (500)".to_string(), SecondLevel::NvemCache(500)),
        (
            "NVEM buffer (1000)".to_string(),
            SecondLevel::NvemCache(1_000),
        ),
    ]
}

fn fig4_4(settings: &RunSettings) -> String {
    let mm_sizes = [200usize, 500, 1_000, 2_000, 5_000];
    let mut points = Vec::new();
    for (label, second) in caching_series() {
        for &mm in &mm_sizes {
            points.push((
                label.clone(),
                mm as f64,
                caching_point(mm, second, false, settings.caching_rate),
                Family::DebitCredit,
            ));
        }
    }
    let results = runner::run_sweep(settings, points);
    format_x_table(&results, &mm_sizes, "main memory buffer size")
}

fn table_4_2(settings: &RunSettings) -> String {
    let mm_sizes = [200usize, 500, 1_000, 2_000];
    let series: Vec<(String, SecondLevel)> = vec![
        (
            "vol. disk cache 1000".to_string(),
            SecondLevel::VolatileDiskCache(1_000),
        ),
        (
            "nv disk cache 1000".to_string(),
            SecondLevel::NonVolatileDiskCache(1_000),
        ),
        ("NVEM cache 1000".to_string(), SecondLevel::NvemCache(1_000)),
        ("NVEM cache 500".to_string(), SecondLevel::NvemCache(500)),
    ];
    let mut out = String::new();
    for force in [false, true] {
        let strategy = if force { "b) FORCE" } else { "a) NOFORCE" };
        let mut points = Vec::new();
        // Main-memory-only runs provide the first row of the table.
        for &mm in &mm_sizes {
            points.push((
                "main memory".to_string(),
                mm as f64,
                caching_point(mm, SecondLevel::None, force, settings.caching_rate),
                Family::DebitCredit,
            ));
        }
        for (label, second) in &series {
            for &mm in &mm_sizes {
                points.push((
                    label.clone(),
                    mm as f64,
                    caching_point(mm, *second, force, settings.caching_rate),
                    Family::DebitCredit,
                ));
            }
        }
        let results = runner::run_sweep(settings, points);
        let _ = writeln!(
            out,
            "{strategy} — hit ratios [%] by main-memory buffer size"
        );
        let _ = write!(out, "{:<28}", "cache level");
        for mm in mm_sizes {
            let _ = write!(out, "{:>10}", mm);
        }
        let _ = writeln!(out);
        // First row: main-memory hit ratio of the MM-only configuration.
        let _ = write!(out, "{:<28}", "main memory");
        for &mm in &mm_sizes {
            let p = results
                .iter()
                .find(|p| p.series == "main memory" && (p.x - mm as f64).abs() < 1e-9)
                .expect("point exists");
            let _ = write!(out, "{:>10.1}", p.report.mm_hit_ratio() * 100.0);
        }
        let _ = writeln!(out);
        // Remaining rows: the *additional* hit ratio of each second-level cache.
        for (label, second) in &series {
            let _ = write!(out, "{:<28}", label);
            for &mm in &mm_sizes {
                let p = results
                    .iter()
                    .find(|p| &p.series == label && (p.x - mm as f64).abs() < 1e-9)
                    .expect("point exists");
                let hit = match second {
                    SecondLevel::NvemCache(_) => p.report.nvem_hit_ratio(),
                    _ => second_level_disk_hit_ratio(&p.report),
                };
                let _ = write!(out, "{:>10.1}", hit * 100.0);
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out);
    }
    out
}

/// The additional hit ratio contributed by a disk cache: read hits at the
/// database disk unit relative to all buffer-manager page references.
fn second_level_disk_hit_ratio(report: &tpsim::SimulationReport) -> f64 {
    let refs = report.buffer.references();
    if refs == 0 {
        return 0.0;
    }
    report.devices[DB_UNIT].stats.read_hits as f64 / refs as f64
}

fn fig4_5(settings: &RunSettings) -> String {
    let cache_sizes = [200usize, 500, 1_000, 2_000, 5_000];
    let series = [
        ("vol. disk cache", 0u8),
        ("nv disk cache", 1u8),
        ("NVEM buffer", 2u8),
    ];
    let mut points = Vec::new();
    for (label, kind) in series {
        for &size in &cache_sizes {
            let second = match kind {
                0 => SecondLevel::VolatileDiskCache(size),
                1 => SecondLevel::NonVolatileDiskCache(size),
                _ => SecondLevel::NvemCache(size),
            };
            points.push((
                label.to_string(),
                size as f64,
                caching_point(500, second, false, settings.caching_rate),
                Family::DebitCredit,
            ));
        }
    }
    let results = runner::run_sweep(settings, points);
    let mut out = format_x_table(&results, &cache_sizes, "2nd-level cache size");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "additional 2nd-level hit ratio [%] (main-memory buffer 500 pages):"
    );
    let _ = write!(out, "{:<46}", "series \\ 2nd-level cache size");
    for s in cache_sizes {
        let _ = write!(out, "{:>10}", s);
    }
    let _ = writeln!(out);
    for (label, kind) in series {
        let _ = write!(out, "{:<46}", label);
        for &size in &cache_sizes {
            let p = results
                .iter()
                .find(|p| p.series == label && (p.x - size as f64).abs() < 1e-9)
                .expect("point exists");
            let hit = if kind == 2 {
                p.report.nvem_hit_ratio()
            } else {
                second_level_disk_hit_ratio(&p.report)
            };
            let _ = write!(out, "{:>10.1}", hit * 100.0);
        }
        let _ = writeln!(out);
    }
    out
}

// ---------------------------------------------------------------------------
// Fig. 4.6 / 4.7 — trace-driven caching
// ---------------------------------------------------------------------------

fn trace_series() -> Vec<(String, TraceStorage)> {
    vec![
        ("MM caching only".to_string(), TraceStorage::MmOnly),
        (
            "vol. disk cache (2000)".to_string(),
            TraceStorage::VolatileDiskCache(2_000),
        ),
        (
            "non-vol. disk cache (2000)".to_string(),
            TraceStorage::NonVolatileDiskCache(2_000),
        ),
        (
            "NVEM cache (2000)".to_string(),
            TraceStorage::NvemCache(2_000),
        ),
        ("solid-state disk".to_string(), TraceStorage::Ssd),
        ("NVEM-resident".to_string(), TraceStorage::NvemResident),
    ]
}

fn fig4_6(settings: &RunSettings) -> String {
    let mm_sizes = [100usize, 500, 1_000, 1_500, 2_000];
    let mut points = Vec::new();
    for (label, storage) in trace_series() {
        for &mm in &mm_sizes {
            points.push((
                label.clone(),
                mm as f64,
                trace_point(mm, storage, settings.trace_rate),
                Family::Trace,
            ));
        }
    }
    let results = runner::run_sweep(settings, points);
    format_x_table(&results, &mm_sizes, "main memory buffer size")
}

fn fig4_7(settings: &RunSettings) -> String {
    let cache_sizes = [0usize, 1_000, 2_000, 3_000, 4_000, 5_000];
    let series = [
        ("vol. disk cache", 0u8),
        ("non-vol. disk cache", 1u8),
        ("NVEM buffer", 2u8),
    ];
    let mut points = Vec::new();
    for (label, kind) in series {
        for &size in &cache_sizes {
            let storage = if size == 0 {
                TraceStorage::MmOnly
            } else {
                match kind {
                    0 => TraceStorage::VolatileDiskCache(size),
                    1 => TraceStorage::NonVolatileDiskCache(size),
                    _ => TraceStorage::NvemCache(size),
                }
            };
            points.push((
                label.to_string(),
                size as f64,
                trace_point(1_000, storage, settings.trace_rate),
                Family::Trace,
            ));
        }
    }
    let results = runner::run_sweep(settings, points);
    format_x_table(&results, &cache_sizes, "2nd-level buffer size")
}

// ---------------------------------------------------------------------------
// Fig. 4.8 — lock contention
// ---------------------------------------------------------------------------

fn fig4_8(settings: &RunSettings) -> String {
    let mut points = Vec::new();
    for allocation in ContentionAllocation::ALL {
        for granularity in [CcMode::Page, CcMode::Object] {
            // The paper only plots the NVEM-resident configuration with page
            // locking (object locking adds nothing there).
            if allocation == ContentionAllocation::NvemResident && granularity == CcMode::Object {
                continue;
            }
            let label = format!(
                "{} - {}",
                allocation.label(),
                if granularity == CcMode::Page {
                    "page locking"
                } else {
                    "object locking"
                }
            );
            for &rate in &settings.rates {
                points.push((
                    label.clone(),
                    rate,
                    fig4_8_point(allocation, granularity, rate),
                    Family::Contention,
                ));
            }
        }
    }
    let results = runner::run_sweep(settings, points);
    let mut out = format_rate_table(&results, &settings.rates, "mean response [ms]");
    let _ = writeln!(out);
    let _ = writeln!(out, "throughput [TPS] per series:");
    out.push_str(&format_throughput(&results, &settings.rates));
    out
}

// ---------------------------------------------------------------------------
// Fig. 5.x — multi-node data-sharing scaling (beyond the paper)
// ---------------------------------------------------------------------------

fn fig5_x(settings: &RunSettings) -> String {
    // The same per-node offered rate at every point: the aggregate load
    // grows linearly with the node count, but the shared log disk and the
    // global lock service do not.
    let per_node_rate = 60.0;
    let node_counts = [1usize, 2, 4, 8];
    let points = node_counts
        .iter()
        .map(|&n| {
            (
                format!("{n} nodes"),
                n as f64,
                runner::data_sharing_point(n, per_node_rate),
                Family::DebitCredit,
            )
        })
        .collect();
    let results = runner::run_sweep(settings, points);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>14} {:>12} {:>12} {:>10} {:>14} {:>14} {:>12}",
        "nodes",
        "offered [TPS]",
        "thru [TPS]",
        "resp [ms]",
        "cpu [%]",
        "remote locks",
        "invalidations",
        "log util [%]"
    );
    for (n, point) in node_counts.iter().zip(&results) {
        let r = &point.report;
        let log_util = r
            .devices
            .get(tpsim::presets::LOG_UNIT)
            .map(|d| d.disk_utilization)
            .unwrap_or(0.0);
        let _ = writeln!(
            out,
            "{:<10} {:>14.0} {:>12.1} {:>12.2} {:>10.1} {:>14} {:>14} {:>12.1}",
            n,
            per_node_rate * *n as f64,
            r.throughput_tps,
            r.response_time.mean,
            r.cpu_utilization * 100.0,
            r.remote_lock_requests(),
            r.invalidations(),
            log_util * 100.0
        );
    }
    out
}

// ---------------------------------------------------------------------------
// Fig. 6.x — restart time after a crash (beyond the paper)
// ---------------------------------------------------------------------------

fn fig6_x(settings: &RunSettings) -> String {
    // FORCE vs NOFORCE × disk- vs NVEM-resident log × checkpoint interval,
    // all at the same moderate arrival rate (the eight-disk log unit keeps
    // the log off the critical path, so throughput is equal across the
    // variants and the restart column carries the trade-off).  Every point
    // crashes at the same fraction of the measurement interval and replays
    // its redo tail from the configured log placement.
    let rate = settings.recovery_rate;
    let intervals = [0.0, settings.measure_ms / 2.0, settings.measure_ms / 8.0];
    let series = [
        ("NOFORCE, disk-resident log", false, false),
        ("NOFORCE, NVEM-resident log", false, true),
        ("FORCE, disk-resident log", true, false),
        ("FORCE, NVEM-resident log", true, true),
    ];
    let mut points = Vec::new();
    for (label, force, nvem_log) in series {
        for &interval in &intervals {
            points.push((
                label.to_string(),
                interval,
                runner::recovery_point(force, nvem_log, interval, rate),
                Family::RecoveryCrash,
            ));
        }
    }
    let results = runner::run_sweep(settings, points);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:>12} {:>10} {:>10} {:>12} {:>10} {:>10} {:>8} {:>12}",
        "series (rate 1 ckpt/column)",
        "ckpt [ms]",
        "thru[TPS]",
        "resp[ms]",
        "restart[ms]",
        "redo recs",
        "log pages",
        "ckpts",
        "ovhd [ms]"
    );
    for p in &results {
        let r = &p.report;
        let rec = r.recovery.as_ref().expect("recovery report present");
        let restart = rec.restart.as_ref().expect("restart report present");
        let _ = writeln!(
            out,
            "{:<28} {:>12.0} {:>10.1} {:>10.2} {:>12.1} {:>10} {:>10} {:>8} {:>12.2}",
            p.series,
            p.x,
            r.throughput_tps,
            r.response_time.mean,
            restart.restart_ms,
            restart.redo_records,
            restart.log_pages_read,
            rec.checkpoints_taken,
            rec.checkpoint_overhead_ms,
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "(crash at {:.0} % of the measurement interval; ckpt 0 = checkpointing disabled,",
        runner::CRASH_AT_FRACTION * 100.0
    );
    let _ = writeln!(out, " so redo reaches back to the start of the log)");
    out
}

// ---------------------------------------------------------------------------
// Fig. 7.x — data sharing vs shared nothing (beyond the paper)
// ---------------------------------------------------------------------------

fn fig7_x(settings: &RunSettings) -> String {
    // The same fig5.x workload family (per-node offered rate, 1/2/4/8 nodes)
    // on both architectures.  Under hash declustering with round-robin
    // transaction routing the shared-nothing remote-access fraction is
    // ≈ (n-1)/n, so sweeping the node count sweeps the function-shipping
    // overhead; data sharing instead queues at its shared log disk and pays
    // global lock messages.  The crossover is where the partitioned log's
    // scaling beats the growing shipping overhead.
    let per_node_rate = 60.0;
    let node_counts = [1usize, 2, 4, 8];
    let mut points = Vec::new();
    for &n in &node_counts {
        points.push((
            format!("{n}/sharing"),
            n as f64,
            runner::data_sharing_point(n, per_node_rate),
            Family::DebitCredit,
        ));
        points.push((
            format!("{n}/nothing"),
            n as f64,
            runner::shared_nothing_point(n, per_node_rate),
            Family::DebitCredit,
        ));
    }
    let results = runner::run_sweep(settings, points);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8} {:<16} {:>14} {:>12} {:>12} {:>10} {:>13} {:>10} {:>12}",
        "nodes",
        "architecture",
        "offered [TPS]",
        "thru [TPS]",
        "resp [ms]",
        "cpu [%]",
        "remote [%]",
        "messages",
        "log util [%]"
    );
    for (i, &n) in node_counts.iter().enumerate() {
        for (offset, label) in [(0usize, "data sharing"), (1usize, "shared nothing")] {
            let point = &results[2 * i + offset];
            let r = &point.report;
            let (remote_frac, messages) = match &r.shipping {
                Some(s) => (s.remote_access_fraction(), s.messages),
                None => (0.0, r.global_locks.messages),
            };
            let log_util = r
                .devices
                .get(tpsim::presets::LOG_UNIT)
                .map(|d| d.disk_utilization)
                .unwrap_or(0.0);
            let _ = writeln!(
                out,
                "{:<8} {:<16} {:>14.0} {:>12.1} {:>12.2} {:>10.1} {:>13.1} {:>10} {:>12.1}",
                n,
                label,
                per_node_rate * n as f64,
                r.throughput_tps,
                r.response_time.mean,
                r.cpu_utilization * 100.0,
                remote_frac * 100.0,
                messages,
                log_util * 100.0
            );
        }
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "shared-nothing / data-sharing throughput ratio (crossover where it exceeds 1):"
    );
    for (i, &n) in node_counts.iter().enumerate() {
        let sharing = results[2 * i].report.throughput_tps;
        let nothing = results[2 * i + 1].report.throughput_tps;
        let ratio = if sharing > 0.0 {
            nothing / sharing
        } else {
            0.0
        };
        let _ = writeln!(out, "  {n} nodes: {ratio:.2}x");
    }
    out
}

// ---------------------------------------------------------------------------
// Fig. 8.x — coherence protocol and page-transfer policy (beyond the paper)
// ---------------------------------------------------------------------------

fn fig8_x(settings: &RunSettings) -> String {
    // The fig5.x data-sharing workload (same per-node offered rate) under
    // every coherence protocol × page-transfer combination.  Broadcast
    // invalidation drops stale copies eagerly at commit; on-request
    // validation leaves them in place and pays a validation round trip at
    // the next reference.  Direct transfer satisfies a miss on a
    // remotely-buffered page from the holder's memory instead of the shared
    // disk.
    let per_node_rate = 60.0;
    let node_counts = [2usize, 4, 8];
    let combos = [
        ("broadcast / disk re-read", CoherenceParams::broadcast()),
        (
            "broadcast / direct transfer",
            CoherenceParams::broadcast().with_direct_transfer(),
        ),
        (
            "on-request / disk re-read",
            CoherenceParams::on_request_validate(),
        ),
        (
            "on-request / direct transfer",
            CoherenceParams::on_request_validate().with_direct_transfer(),
        ),
    ];
    let mut points = Vec::new();
    for (label, coherence) in combos {
        for &n in &node_counts {
            points.push((
                label.to_string(),
                n as f64,
                runner::coherence_point(n, per_node_rate, coherence),
                Family::DebitCredit,
            ));
        }
    }
    let results = runner::run_sweep(settings, points);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<30} {:>6} {:>11} {:>10} {:>8} {:>13} {:>12} {:>10} {:>10}",
        "protocol / page transfer",
        "nodes",
        "thru [TPS]",
        "resp [ms]",
        "cpu [%]",
        "invalidations",
        "stale valid.",
        "transfers",
        "fallbacks"
    );
    for p in &results {
        let r = &p.report;
        // The default combination omits the coherence section (its reports
        // stay byte-identical to pre-protocol-option ones); its lazy/transfer
        // counters are all zero by construction.
        let (stale, transfers, fallbacks) = match &r.coherence {
            Some(c) => (
                c.stale_validations,
                c.direct_transfers,
                c.transfer_fallback_reads,
            ),
            None => (0, 0, 0),
        };
        let _ = writeln!(
            out,
            "{:<30} {:>6} {:>11.1} {:>10.2} {:>8.1} {:>13} {:>12} {:>10} {:>10}",
            p.series,
            p.x as usize,
            r.throughput_tps,
            r.response_time.mean,
            r.cpu_utilization * 100.0,
            r.invalidations(),
            stale,
            transfers,
            fallbacks
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "(invalidations = stale copies dropped, eagerly at commit under broadcast,"
    );
    let _ = writeln!(
        out,
        " lazily at the validating reference under on-request; transfers/fallbacks ="
    );
    let _ = writeln!(
        out,
        " misses served from a donor node's memory vs re-read from the shared disk)"
    );
    out
}

// ---------------------------------------------------------------------------
// Fig. 10.x — tail latency vs load under skew and bursts (beyond the paper)
// ---------------------------------------------------------------------------

/// The workload shapes fig10.x compares: two Zipf skew intensities under a
/// constant arrival rate, plus the heavier skew under a bursty schedule.
fn workload_shapes() -> Vec<(&'static str, WorkloadParams)> {
    let mut burst = WorkloadParams::skewed(0.9, 0.2);
    burst.schedule = WorkloadSchedule::Burst {
        period_ms: 1_000.0,
        burst_fraction: 0.25,
        burst_factor: 4.0,
    };
    vec![
        ("zipf 0.5, constant", WorkloadParams::skewed(0.5, 0.2)),
        ("zipf 0.9, constant", WorkloadParams::skewed(0.9, 0.2)),
        ("zipf 0.9, burst 4x/25%", burst),
    ]
}

/// Formats one percentile column of the fig10.x sweep as a rate table.
fn format_tail_table(
    points: &[SweepPoint],
    rates: &[f64],
    value: &str,
    get: impl Fn(&tpsim::SimulationReport) -> f64,
) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{:<46}",
        format!("series \\ offered rate [TPS] ({value})")
    );
    for r in rates {
        let _ = write!(out, "{:>10.0}", r);
    }
    let _ = writeln!(out);
    let mut series: Vec<&str> = Vec::new();
    for p in points {
        if !series.contains(&p.series.as_str()) {
            series.push(&p.series);
        }
    }
    for s in series {
        let _ = write!(out, "{:<46}", s);
        for r in rates {
            let point = points
                .iter()
                .find(|p| p.series == s && (p.x - r).abs() < 1e-9);
            match point {
                Some(p) => {
                    let _ = write!(out, "{:>10.2}", get(&p.report));
                }
                None => {
                    let _ = write!(out, "{:>10}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

fn fig10_x(settings: &RunSettings) -> String {
    // The fig7.x two-node architecture comparison as an open system under
    // internet-style traffic: hot-spot-skewed page accesses (Zipf over a hot
    // set) and a time-varying arrival schedule.  The mean barely moves when
    // the skew grows — the lock and buffer hot spots show up in the p99/p999
    // columns, which the per-node quantile sketches (merged cluster-wide at
    // report time) make measurable at constant memory.
    let num_nodes = 2usize;
    let mut points = Vec::new();
    for (arch_label, shared_nothing) in [("sharing", false), ("nothing", true)] {
        for (shape_label, workload) in workload_shapes() {
            for &rate in &settings.rates {
                points.push((
                    format!("{arch_label}: {shape_label}"),
                    rate,
                    runner::workload_point(
                        shared_nothing,
                        num_nodes,
                        rate / num_nodes as f64,
                        workload,
                    ),
                    Family::DebitCredit,
                ));
            }
        }
    }
    let results = runner::run_sweep(settings, points);
    let tail = |f: fn(&tpsim::TailLatencyReport) -> f64| {
        move |r: &tpsim::SimulationReport| r.tail.as_ref().map(&f).unwrap_or(0.0)
    };
    let mut out = String::new();
    let _ = writeln!(out, "mean response [ms]:");
    out.push_str(&format_tail_table(&results, &settings.rates, "mean", |r| {
        r.response_time.mean
    }));
    let _ = writeln!(out);
    let _ = writeln!(out, "p50 response [ms]:");
    out.push_str(&format_tail_table(
        &results,
        &settings.rates,
        "p50",
        tail(|t| t.p50),
    ));
    let _ = writeln!(out);
    let _ = writeln!(out, "p99 response [ms]:");
    out.push_str(&format_tail_table(
        &results,
        &settings.rates,
        "p99",
        tail(|t| t.p99),
    ));
    let _ = writeln!(out);
    let _ = writeln!(out, "p999 response [ms]:");
    out.push_str(&format_tail_table(
        &results,
        &settings.rates,
        "p999",
        tail(|t| t.p999),
    ));
    let _ = writeln!(out);
    let worst_bound = results
        .iter()
        .filter_map(|p| p.report.tail.as_ref())
        .map(|t| t.rank_error_bound)
        .max()
        .unwrap_or(0);
    let _ = writeln!(
        out,
        "({num_nodes} nodes, offered rate split round-robin; hot set = 20 % of each"
    );
    let _ = writeln!(
        out,
        " partition, Zipf-ranked; burst = 4x the base rate for 25 % of each period;"
    );
    let _ = writeln!(
        out,
        " percentiles from merged per-node sketches, worst rank-error bound {worst_bound})"
    );
    out
}

// ---------------------------------------------------------------------------
// Fig. 11.x — per-device I/O request scheduling (beyond the paper)
// ---------------------------------------------------------------------------

/// The scheduler policies fig11.x compares, from plain FCFS to the full
/// coalesce + elevator + read-ahead stack.
fn scheduler_policies() -> Vec<(&'static str, storage::IoSchedulerParams)> {
    let off = storage::IoSchedulerParams::default();
    vec![
        ("FCFS", off),
        (
            "coalesce",
            storage::IoSchedulerParams {
                coalesce: true,
                ..off
            },
        ),
        (
            "coalesce+elevator",
            storage::IoSchedulerParams {
                coalesce: true,
                elevator: true,
                ..off
            },
        ),
        (
            "coalesce+elevator+prefetch4",
            storage::IoSchedulerParams {
                coalesce: true,
                elevator: true,
                prefetch_depth: 4,
                ..off
            },
        ),
    ]
}

fn fig11_x(settings: &RunSettings) -> String {
    // The fig5.x data-sharing workload (same per-node offered rate, growing
    // node count) under each per-device scheduler policy.  The shared DB
    // disk unit serves every node's misses, so the aggregate load sweeps the
    // read queue through its interesting range; the NVEM-log variant removes
    // the log-disk ceiling so the data-disk queue itself saturates.
    let per_node_rate = 60.0;
    let node_counts = [1usize, 2, 4, 8];
    let mut points = Vec::new();
    for (placement, nvem_log) in [("disk log", false), ("NVEM log", true)] {
        for (policy, params) in scheduler_policies() {
            for &n in &node_counts {
                points.push((
                    format!("{placement}: {policy}"),
                    n as f64,
                    runner::scheduler_point(n, per_node_rate, params, nvem_log),
                    Family::DebitCredit,
                ));
            }
        }
    }
    let results = runner::run_sweep(settings, points);
    let mut out = format_x_table(&results, &node_counts, "nodes (60 TPS per node)");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "scheduler counters at 8 nodes (summed over devices; FCFS renders none):"
    );
    let _ = writeln!(
        out,
        "{:<38} {:>10} {:>10} {:>8} {:>10} {:>12} {:>10} {:>10}",
        "series",
        "thru[TPS]",
        "resp[ms]",
        "depth",
        "coalesced",
        "merged adj.",
        "pf hits",
        "pf wasted"
    );
    for p in results.iter().filter(|p| (p.x - 8.0).abs() < 1e-9) {
        let r = &p.report;
        let mut depth = 0.0f64;
        let (mut coalesced, mut merged, mut hits, mut wasted) = (0u64, 0u64, 0u64, 0u64);
        for d in &r.devices {
            if let Some(s) = &d.scheduler {
                depth = depth.max(s.mean_queue_depth);
                coalesced += s.coalesced;
                merged += s.merged_adjacent;
                hits += s.prefetch_hits;
                wasted += s.prefetch_wasted;
            }
        }
        let _ = writeln!(
            out,
            "{:<38} {:>10.1} {:>10.2} {:>8.2} {:>10} {:>12} {:>10} {:>10}",
            p.series,
            r.throughput_tps,
            r.response_time.mean,
            depth,
            coalesced,
            merged,
            hits,
            wasted
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "(depth = worst per-device mean read-queue depth; coalesced = reads that"
    );
    let _ = writeln!(
        out,
        " joined an existing request; merged adj. = extra pages riding a shared seek;"
    );
    let _ = writeln!(
        out,
        " pf hits/wasted = prefetched pages referenced vs dropped unreferenced)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_catalogue_covers_all_tables_and_figures() {
        let ids: Vec<&str> = all_experiments().iter().map(|e| e.id).collect();
        for expected in [
            "table2.1", "table2.2", "fig4.1", "fig4.2", "fig4.3", "fig4.4", "table4.2", "fig4.5",
            "fig4.6", "fig4.7", "fig4.8", "fig5.x", "fig6.x", "fig7.x", "fig8.x", "fig10.x",
            "fig11.x",
        ] {
            assert!(ids.contains(&expected), "missing {expected}");
        }
        assert_eq!(ids.len(), 17);
    }

    #[test]
    fn static_tables_render() {
        let t21 = run_experiment("table2.1", &RunSettings::quick());
        assert!(t21.table.contains("extended memory"));
        assert!(t21.table.contains("disk"));
        let t22 = run_experiment("table2.2", &RunSettings::quick());
        assert!(t22.table.contains("non-volatile extended memory"));
    }

    #[test]
    #[should_panic]
    fn unknown_experiment_id_panics() {
        let _ = run_experiment("fig9.9", &RunSettings::quick());
    }

    #[test]
    fn fig8_x_quick_run_produces_every_policy_combination() {
        let result = run_experiment("fig8.x", &RunSettings::quick());
        for series in [
            "broadcast / disk re-read",
            "broadcast / direct transfer",
            "on-request / disk re-read",
            "on-request / direct transfer",
        ] {
            assert!(
                result.table.contains(series),
                "missing series {series} in\n{}",
                result.table
            );
        }
    }

    #[test]
    fn fig10_x_quick_run_emits_tail_percentiles_for_both_architectures() {
        let mut settings = RunSettings::quick();
        settings.rates = vec![100.0, 300.0];
        let result = run_experiment("fig10.x", &settings);
        for series in [
            "sharing: zipf 0.5, constant",
            "sharing: zipf 0.9, constant",
            "sharing: zipf 0.9, burst 4x/25%",
            "nothing: zipf 0.5, constant",
            "nothing: zipf 0.9, constant",
            "nothing: zipf 0.9, burst 4x/25%",
        ] {
            assert!(
                result.table.contains(series),
                "missing series {series} in\n{}",
                result.table
            );
        }
        for section in [
            "p50 response",
            "p99 response",
            "p999 response",
            "rank-error bound",
        ] {
            assert!(
                result.table.contains(section),
                "missing section {section} in\n{}",
                result.table
            );
        }
    }

    #[test]
    fn fig11_x_quick_run_produces_every_policy_and_renders_counters() {
        let result = run_experiment("fig11.x", &RunSettings::quick());
        for series in [
            "disk log: FCFS",
            "disk log: coalesce",
            "disk log: coalesce+elevator",
            "disk log: coalesce+elevator+prefetch4",
            "NVEM log: FCFS",
            "NVEM log: coalesce+elevator+prefetch4",
        ] {
            assert!(
                result.table.contains(series),
                "missing series {series} in\n{}",
                result.table
            );
        }
        assert!(
            result.table.contains("scheduler counters at 8 nodes"),
            "missing counter table in\n{}",
            result.table
        );
    }

    #[test]
    fn fig4_1_quick_run_produces_all_series() {
        let mut settings = RunSettings::quick();
        settings.rates = vec![50.0, 150.0];
        let result = run_experiment("fig4.1", &settings);
        for variant in LogVariant::ALL {
            assert!(
                result.table.contains(variant.label()),
                "missing series {} in\n{}",
                variant.label(),
                result.table
            );
        }
    }
}
