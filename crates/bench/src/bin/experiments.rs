//! Regenerates the tables and figures of the paper's evaluation section,
//! and measures the simulation kernel's wall-clock throughput.
//!
//! ```bash
//! # All experiments at reduced ("standard") scale:
//! cargo run --release -p tpsim-bench --bin experiments
//!
//! # A single experiment:
//! cargo run --release -p tpsim-bench --bin experiments -- fig4.1
//!
//! # Scale selection: --quick (smoke test), --standard (default), --full
//! # (the paper's database sizes and simulation lengths; takes much longer).
//! cargo run --release -p tpsim-bench --bin experiments -- --full fig4.2
//!
//! # Kernel profile: run the profile suite (fig5.x sweep + quickstart +
//! # fig6.x points), print wall-clock ms and events/sec per point and write
//! # the JSON (default BENCH_kernel.json; pass a path to override):
//! cargo run --release -p tpsim-bench --bin experiments -- --profile out.json
//!
//! # Perf gate (CI): additionally compare against a committed baseline and
//! # exit non-zero when events/sec drops more than 30% below it:
//! cargo run --release -p tpsim-bench --bin experiments -- \
//!     --profile fresh.json --check-baseline BENCH_kernel.json
//!
//! # Scaling gate (CI): run the suite sequentially and on the sharded kernel,
//! # assert identical event counts (determinism) on any host and wall-clock
//! # parity/speedup on hosts with >= 2 CPUs; write the scaling artifact:
//! cargo run --release -p tpsim-bench --bin experiments -- \
//!     --threads 2 --check-scaling BENCH_scaling.fresh.json
//! ```

use tpsim_bench::profile::{
    check_against_baseline, check_scaling, kernel_profile_suite, parse_baseline, render_bench_json,
    HistoryEntry, ScalingInfo,
};
use tpsim_bench::{all_experiments, experiments::run_experiment, RunSettings};

/// Tolerated one-sided events/sec drop before the baseline gate fails.
const BASELINE_TOLERANCE: f64 = 0.30;

/// Tolerated per-point slowdown of the sharded kernel vs sequential before
/// the scaling gate fails (only enforced on hosts with >= 2 CPUs).
const SCALING_TOLERANCE: f64 = 0.10;

/// Best-of-N repetitions per profile point.
const PROFILE_REPS: usize = 3;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut settings = RunSettings::standard();
    let mut scale_label = "standard";
    let mut requested: Vec<String> = Vec::new();
    let mut profile_out: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut scaling_out: Option<String> = None;
    let mut kernel_threads: usize = 0;
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => {
                settings = RunSettings::quick();
                scale_label = "quick";
            }
            "--standard" => {
                settings = RunSettings::standard();
                scale_label = "standard";
            }
            "--full" => {
                settings = RunSettings::full();
                scale_label = "full";
            }
            "--sequential" => settings.parallel = false,
            "--threads" => {
                // Sharded-kernel workers inside each simulation; results are
                // byte-identical for every value (see docs/ARCHITECTURE.md,
                // "Parallel kernel"), only wall-clock changes.
                let parsed = iter.next().and_then(|n| n.parse::<usize>().ok());
                let Some(n) = parsed else {
                    eprintln!("--threads needs a thread count");
                    std::process::exit(2);
                };
                kernel_threads = n;
            }
            "--profile" => {
                // Optional output path; defaults to BENCH_kernel.json.  Only
                // a `.json` token is taken as the path, so an experiment id
                // following `--profile` is never silently swallowed.
                let path = iter
                    .peek()
                    .filter(|next| next.ends_with(".json"))
                    .map(|next| next.to_string());
                if path.is_some() {
                    iter.next();
                }
                profile_out = Some(path.unwrap_or_else(|| "BENCH_kernel.json".to_string()));
            }
            "--check-baseline" => {
                let Some(path) = iter.next() else {
                    eprintln!("--check-baseline needs a path");
                    std::process::exit(2);
                };
                baseline_path = Some(path.to_string());
            }
            "--check-scaling" => {
                // Optional artifact path, recognised like --profile's.
                let path = iter
                    .peek()
                    .filter(|next| next.ends_with(".json"))
                    .map(|next| next.to_string());
                if path.is_some() {
                    iter.next();
                }
                scaling_out = Some(path.unwrap_or_default());
            }
            "--help" | "-h" => {
                print_help();
                return;
            }
            other => requested.push(other.to_string()),
        }
    }

    if profile_out.is_some() || baseline_path.is_some() || scaling_out.is_some() {
        // Profile mode always runs the fixed full-scale suite; combining it
        // with experiment ids would silently ignore them, so refuse instead.
        if !requested.is_empty() {
            eprintln!(
                "--profile/--check-baseline/--check-scaling run the fixed profile suite \
                 and cannot be combined with experiment ids (got: {})",
                requested.join(", ")
            );
            std::process::exit(2);
        }
        if let Some(out) = scaling_out {
            run_scaling_mode(out, kernel_threads);
            return;
        }
        run_profile_mode(profile_out, baseline_path, kernel_threads);
        return;
    }
    settings.kernel_threads = kernel_threads;

    let catalogue = all_experiments();
    let ids: Vec<String> = if requested.is_empty() {
        catalogue.iter().map(|e| e.id.to_string()).collect()
    } else {
        for r in &requested {
            if !catalogue.iter().any(|e| e.id == r) {
                eprintln!("unknown experiment id '{r}'");
                print_help();
                std::process::exit(1);
            }
        }
        requested
    };

    println!("# TPSIM experiment regeneration ({scale_label} scale)");
    println!(
        "# debit-credit scale 1/{}, trace scale 1/{}, warm-up {} ms, measurement {} ms",
        settings.debit_credit_scale, settings.trace_scale, settings.warmup_ms, settings.measure_ms
    );
    println!();
    for id in ids {
        // analyzer: allow(wall-clock): reports regeneration time, not simulated results
        let start = std::time::Instant::now();
        let result = run_experiment(&id, &settings);
        println!("## {} — {}", result.experiment.id, result.experiment.title);
        println!();
        println!("{}", result.table);
        println!(
            "(regenerated in {:.1} s wall-clock)",
            start.elapsed().as_secs_f64()
        );
        println!();
    }
}

/// Runs the kernel profile suite, prints it, optionally writes the JSON and
/// optionally gates against a committed baseline.
fn run_profile_mode(
    profile_out: Option<String>,
    baseline_path: Option<String>,
    kernel_threads: usize,
) {
    let scaling = ScalingInfo::current(kernel_threads);
    println!(
        "# TPSIM kernel profile (full scale, best of {PROFILE_REPS} reps per point, \
         kernel threads {kernel_threads}, host parallelism {})",
        scaling.host_parallelism
    );
    let fresh = kernel_profile_suite(PROFILE_REPS, kernel_threads);
    println!(
        "{:<26} {:>12} {:>12} {:>16} {:>18}",
        "point", "events", "wall [ms]", "events/sec", "fanout [us/commit]"
    );
    for p in &fresh {
        println!(
            "{:<26} {:>12} {:>12.1} {:>16.0} {:>18.3}",
            p.id, p.events, p.wall_ms, p.events_per_sec, p.fanout_us_per_commit
        );
    }
    if fresh.iter().any(|p| p.sched.is_some()) {
        println!();
        println!("# request-scheduler counters (simulated, summed over devices)");
        println!(
            "{:<26} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "point", "queue depth", "coalesced", "merged adj.", "pf hits", "pf wasted"
        );
        for p in &fresh {
            let Some(s) = &p.sched else { continue };
            println!(
                "{:<26} {:>12.3} {:>12} {:>12} {:>12} {:>12}",
                p.id,
                s.mean_queue_depth,
                s.coalesced,
                s.merged_adjacent,
                s.prefetch_hits,
                s.prefetch_wasted
            );
        }
    }
    if let Some(out) = profile_out {
        // A fresh emission carries no history; the committed BENCH_kernel.json
        // keeps its hand-curated history section across PRs.
        std::fs::write(&out, render_bench_json(&fresh, &scaling, &[])).unwrap_or_else(|e| {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(2);
        });
        println!("\nwrote {out}");
    }
    if let Some(path) = baseline_path {
        let json = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        let baseline = parse_baseline(&json).unwrap_or_else(|e| {
            eprintln!("cannot parse baseline {path}: {e}");
            std::process::exit(2);
        });
        match check_against_baseline(&fresh, &baseline, BASELINE_TOLERANCE) {
            Ok(table) => println!("\nbaseline check ({path}, tolerance 30%):\n{table}"),
            Err(report) => {
                eprintln!("\nbaseline check FAILED ({path}):\n{report}");
                std::process::exit(1);
            }
        }
    }
}

/// Runs the profile suite twice — sequentially and on the sharded kernel —
/// and gates the pair with [`check_scaling`]: event counts must match on any
/// host; wall-clock must hold up only when the host has >= 2 CPUs.  Writes
/// the parallel measurement (with the sequential run as its history entry)
/// to `out` unless it is empty.
fn run_scaling_mode(out: String, kernel_threads: usize) {
    let threads = kernel_threads.max(2);
    let scaling = ScalingInfo::current(threads);
    println!(
        "# TPSIM scaling gate (full scale, best of {PROFILE_REPS} reps per point, \
         kernel threads {threads} vs sequential, host parallelism {})",
        scaling.host_parallelism
    );
    let sequential = kernel_profile_suite(PROFILE_REPS, 0);
    let parallel = kernel_profile_suite(PROFILE_REPS, threads);
    if !out.is_empty() {
        let reference = HistoryEntry {
            label: "sequential reference (same build, same host, kernel_threads 0)".to_string(),
            points: sequential.clone(),
        };
        std::fs::write(&out, render_bench_json(&parallel, &scaling, &[reference])).unwrap_or_else(
            |e| {
                eprintln!("cannot write {out}: {e}");
                std::process::exit(2);
            },
        );
        println!("wrote {out}");
    }
    match check_scaling(&sequential, &parallel, &scaling, SCALING_TOLERANCE) {
        Ok(table) => println!("\nscaling check (tolerance 10%):\n{table}"),
        Err(report) => {
            eprintln!("\nscaling check FAILED:\n{report}");
            std::process::exit(1);
        }
    }
}

fn print_help() {
    println!(
        "usage: experiments [--quick|--standard|--full] [--sequential] [--threads N] \
         [EXPERIMENT-ID ...]\n\
         \x20      experiments [--threads N] --profile [OUT.json] \
         [--check-baseline BENCH_kernel.json]\n\
         \x20      experiments [--threads N] --check-scaling [OUT.json]\n\
         \x20      --threads N runs each simulation on the sharded event kernel with N\n\
         \x20      workers (results are byte-identical; only wall-clock changes)\n\
         \x20      --check-scaling runs the profile suite sequentially and with the\n\
         \x20      sharded kernel (N workers, default 2), asserts equal event counts,\n\
         \x20      and gates wall-clock on hosts with >= 2 CPUs"
    );
    println!("experiments:");
    for e in all_experiments() {
        println!("  {:<10} {}", e.id, e.title);
    }
}
