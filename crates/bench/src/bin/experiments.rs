//! Regenerates the tables and figures of the paper's evaluation section.
//!
//! ```bash
//! # All experiments at reduced ("standard") scale:
//! cargo run --release -p tpsim-bench --bin experiments
//!
//! # A single experiment:
//! cargo run --release -p tpsim-bench --bin experiments -- fig4.1
//!
//! # Scale selection: --quick (smoke test), --standard (default), --full
//! # (the paper's database sizes and simulation lengths; takes much longer).
//! cargo run --release -p tpsim-bench --bin experiments -- --full fig4.2
//! ```

use tpsim_bench::{all_experiments, experiments::run_experiment, RunSettings};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut settings = RunSettings::standard();
    let mut scale_label = "standard";
    let mut requested: Vec<String> = Vec::new();
    for arg in &args {
        match arg.as_str() {
            "--quick" => {
                settings = RunSettings::quick();
                scale_label = "quick";
            }
            "--standard" => {
                settings = RunSettings::standard();
                scale_label = "standard";
            }
            "--full" => {
                settings = RunSettings::full();
                scale_label = "full";
            }
            "--sequential" => settings.parallel = false,
            "--help" | "-h" => {
                print_help();
                return;
            }
            other => requested.push(other.to_string()),
        }
    }
    let catalogue = all_experiments();
    let ids: Vec<String> = if requested.is_empty() {
        catalogue.iter().map(|e| e.id.to_string()).collect()
    } else {
        for r in &requested {
            if !catalogue.iter().any(|e| e.id == r) {
                eprintln!("unknown experiment id '{r}'");
                print_help();
                std::process::exit(1);
            }
        }
        requested
    };

    println!("# TPSIM experiment regeneration ({scale_label} scale)");
    println!(
        "# debit-credit scale 1/{}, trace scale 1/{}, warm-up {} ms, measurement {} ms",
        settings.debit_credit_scale, settings.trace_scale, settings.warmup_ms, settings.measure_ms
    );
    println!();
    for id in ids {
        let start = std::time::Instant::now();
        let result = run_experiment(&id, &settings);
        println!("## {} — {}", result.experiment.id, result.experiment.title);
        println!();
        println!("{}", result.table);
        println!(
            "(regenerated in {:.1} s wall-clock)",
            start.elapsed().as_secs_f64()
        );
        println!();
    }
}

fn print_help() {
    println!("usage: experiments [--quick|--standard|--full] [--sequential] [EXPERIMENT-ID ...]");
    println!("experiments:");
    for e in all_experiments() {
        println!("  {:<10} {}", e.id, e.title);
    }
}
