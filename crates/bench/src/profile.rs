//! Kernel wall-clock profiling: the `--profile` mode of the experiments
//! binary and the perf-smoke baseline gate.
//!
//! The profile suite runs a fixed set of representative configurations —
//! the fig5.x node-scaling sweep plus a quickstart-style single-node point
//! and a fig6.x crash-replay point — several times each, keeps the best
//! (least-noisy) run per point and emits `BENCH_kernel.json` at the repo
//! root.  The committed file is the perf trajectory of the repository: CI
//! re-measures the suite and fails when events/sec drops more than the
//! configured tolerance below the committed numbers, and each PR that moves
//! the numbers appends its before/after to the `history` section.
//!
//! The JSON is written *and* parsed by this module (the workspace has no
//! serde); the parser only understands the flat shape emitted here, which is
//! exactly what the baseline gate needs.

use std::fmt::Write as _;

use crate::runner::{self, Family, RunSettings};
use tpsim::SimulationConfig;

/// One measured point of the profile suite.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfilePoint {
    /// Stable point id (e.g. `fig5.x/8-nodes`), the key CI compares on.
    pub id: String,
    /// Events popped by the simulation kernel.
    pub events: u64,
    /// Best observed wall-clock time (ms).
    pub wall_ms: f64,
    /// Best observed events per wall-clock second.
    pub events_per_sec: f64,
}

/// The fixed configurations of the profile suite, as `(id, config, family)`.
fn suite_points() -> Vec<(String, SimulationConfig, Family)> {
    let mut points: Vec<(String, SimulationConfig, Family)> = [1usize, 2, 4, 8]
        .iter()
        .map(|&n| {
            (
                format!("fig5.x/{n}-nodes"),
                runner::data_sharing_point(n, 60.0),
                Family::DebitCredit,
            )
        })
        .collect();
    points.push((
        "quickstart/disk".to_string(),
        runner::fig4_2_point(tpsim::presets::DebitCreditStorage::Disk, 100.0),
        Family::DebitCredit,
    ));
    points.push((
        "fig6.x/noforce-disk-log".to_string(),
        runner::recovery_point(false, false, 500.0, 150.0),
        Family::RecoveryCrash,
    ));
    points
}

/// Runs the profile suite at full experiment scale: every point `reps` times
/// sequentially, keeping the fastest run (wall-clock noise is one-sided).
pub fn kernel_profile_suite(reps: usize) -> Vec<ProfilePoint> {
    let mut settings = RunSettings::full();
    settings.parallel = false;
    let reps = reps.max(1);
    suite_points()
        .into_iter()
        .map(|(id, mut config, family)| {
            // Derive the seed exactly as a one-point sweep would, so the
            // simulated workload (and its event count) matches what
            // `run_sweep_profiled` of the same point produces and the
            // committed baseline stays comparable.
            config.seed = runner::derive_run_seed(config.seed, 0);
            let mut best: Option<ProfilePoint> = None;
            for _ in 0..reps {
                let (_, p) = runner::run_point_profiled(&settings, config.clone(), family);
                let candidate = ProfilePoint {
                    id: id.clone(),
                    events: p.events,
                    wall_ms: p.wall_ms,
                    events_per_sec: p.events_per_sec,
                };
                let better = best
                    .as_ref()
                    .is_none_or(|b| candidate.events_per_sec > b.events_per_sec);
                if better {
                    best = Some(candidate);
                }
            }
            best.expect("at least one rep")
        })
        .collect()
}

/// One labelled snapshot in the `history` section.
#[derive(Debug, Clone)]
pub struct HistoryEntry {
    /// Snapshot label (e.g. `PR4-pre: binary heap + hashmap engine`).
    pub label: String,
    /// The snapshot's measured points.
    pub points: Vec<ProfilePoint>,
}

fn render_points(out: &mut String, points: &[ProfilePoint], indent: &str) {
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "{indent}{{\"id\": \"{}\", \"events\": {}, \"wall_ms\": {:.3}, \
             \"events_per_sec\": {:.0}}}{comma}",
            p.id, p.events, p.wall_ms, p.events_per_sec
        );
    }
}

/// Renders `BENCH_kernel.json`: the current baseline points plus the
/// historical snapshots.
pub fn render_bench_json(points: &[ProfilePoint], history: &[HistoryEntry]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str(
        "  \"description\": \"Kernel wall-clock baseline: events/sec per profile-suite point \
         (regenerate: cargo run --release -p tpsim-bench --bin experiments -- --profile)\",\n",
    );
    out.push_str("  \"points\": [\n");
    render_points(&mut out, points, "    ");
    out.push_str("  ],\n");
    out.push_str("  \"history\": [\n");
    for (i, h) in history.iter().enumerate() {
        let comma = if i + 1 < history.len() { "," } else { "" };
        let _ = writeln!(out, "    {{\"label\": \"{}\", \"points\": [", h.label);
        render_points(&mut out, &h.points, "      ");
        let _ = writeln!(out, "    ]}}{comma}");
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

/// Parses the *top-level* `points` array of a `BENCH_kernel.json` produced by
/// [`render_bench_json`], returning `(id, events_per_sec)` pairs.  History
/// entries are ignored.  Returns an error for files this module did not
/// write.
pub fn parse_baseline(json: &str) -> Result<Vec<(String, f64)>, String> {
    let start = json
        .find("\"points\": [")
        .ok_or("no top-level \"points\" array")?;
    let tail = &json[start..];
    let end = tail.find(']').ok_or("unterminated points array")?;
    let body = &tail[..end];
    let mut out = Vec::new();
    for line in body.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with('{') {
            continue;
        }
        let id = extract_str(line, "id").ok_or_else(|| format!("no id in: {line}"))?;
        let eps = extract_num(line, "events_per_sec")
            .ok_or_else(|| format!("no events_per_sec in: {line}"))?;
        out.push((id, eps));
    }
    if out.is_empty() {
        return Err("empty points array".to_string());
    }
    Ok(out)
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

fn extract_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Compares a fresh suite run against the committed baseline: every baseline
/// point re-measured in `fresh` must reach at least `1 - tolerance` of its
/// committed events/sec.  Returns a human-readable table on success and the
/// offending points on failure.
pub fn check_against_baseline(
    fresh: &[ProfilePoint],
    baseline: &[(String, f64)],
    tolerance: f64,
) -> Result<String, String> {
    let mut table = String::new();
    let mut failures = Vec::new();
    let _ = writeln!(
        table,
        "{:<26} {:>16} {:>16} {:>8}",
        "point", "baseline [ev/s]", "fresh [ev/s]", "ratio"
    );
    for (id, base_eps) in baseline {
        let Some(f) = fresh.iter().find(|p| &p.id == id) else {
            failures.push(format!("point {id} missing from the fresh run"));
            continue;
        };
        let ratio = f.events_per_sec / base_eps.max(1e-9);
        let _ = writeln!(
            table,
            "{:<26} {:>16.0} {:>16.0} {:>8.2}",
            id, base_eps, f.events_per_sec, ratio
        );
        if ratio < 1.0 - tolerance {
            failures.push(format!(
                "{id}: events/sec dropped to {ratio:.2}x of the committed baseline \
                 ({:.0} vs {base_eps:.0})",
                f.events_per_sec
            ));
        }
    }
    if failures.is_empty() {
        Ok(table)
    } else {
        Err(format!(
            "{table}\nperf regression:\n{}",
            failures.join("\n")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_points() -> Vec<ProfilePoint> {
        vec![
            ProfilePoint {
                id: "fig5.x/8-nodes".to_string(),
                events: 1_000_000,
                wall_ms: 50.0,
                events_per_sec: 20_000_000.0,
            },
            ProfilePoint {
                id: "quickstart/disk".to_string(),
                events: 123_456,
                wall_ms: 10.5,
                events_per_sec: 11_757_714.0,
            },
        ]
    }

    #[test]
    fn json_roundtrips_through_the_parser() {
        let history = vec![HistoryEntry {
            label: "PR4-pre".to_string(),
            points: vec![ProfilePoint {
                id: "fig5.x/8-nodes".to_string(),
                events: 1_000_000,
                wall_ms: 100.0,
                events_per_sec: 10_000_000.0,
            }],
        }];
        let json = render_bench_json(&sample_points(), &history);
        let parsed = parse_baseline(&json).expect("parse own output");
        // Only the top-level points, not the history snapshot.
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "fig5.x/8-nodes");
        assert!((parsed[0].1 - 20_000_000.0).abs() < 1.0);
        assert_eq!(parsed[1].0, "quickstart/disk");
    }

    #[test]
    fn baseline_gate_passes_within_tolerance_and_fails_beyond() {
        let baseline = vec![("fig5.x/8-nodes".to_string(), 20_000_000.0)];
        let mut fresh = sample_points();
        // 80% of baseline at 30% tolerance: fine.
        fresh[0].events_per_sec = 16_000_000.0;
        assert!(check_against_baseline(&fresh, &baseline, 0.3).is_ok());
        // 60% of baseline: regression.
        fresh[0].events_per_sec = 12_000_000.0;
        let err = check_against_baseline(&fresh, &baseline, 0.3).unwrap_err();
        assert!(err.contains("perf regression"), "{err}");
        // A missing point is a failure too.
        let missing = vec![("gone".to_string(), 1.0)];
        assert!(check_against_baseline(&fresh, &missing, 0.3).is_err());
    }

    #[test]
    fn suite_covers_the_fig5x_sweep() {
        let ids: Vec<String> = suite_points().into_iter().map(|(id, _, _)| id).collect();
        for n in [1, 2, 4, 8] {
            assert!(ids.contains(&format!("fig5.x/{n}-nodes")));
        }
        assert!(ids.iter().any(|i| i.starts_with("quickstart/")));
        assert!(ids.iter().any(|i| i.starts_with("fig6.x/")));
    }
}
