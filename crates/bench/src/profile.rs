//! Kernel wall-clock profiling: the `--profile` mode of the experiments
//! binary and the perf-smoke baseline gate.
//!
//! The profile suite runs a fixed set of representative configurations —
//! the fig5.x node-scaling sweep plus a quickstart-style single-node point
//! and a fig6.x crash-replay point — several times each, keeps the best
//! (least-noisy) run per point and emits `BENCH_kernel.json` at the repo
//! root.  The committed file is the perf trajectory of the repository: CI
//! re-measures the suite and fails when events/sec drops more than the
//! configured tolerance below the committed numbers, and each PR that moves
//! the numbers appends its before/after to the `history` section.
//!
//! The JSON is written *and* parsed by this module (the workspace has no
//! serde); the parser only understands the flat shape emitted here, which is
//! exactly what the baseline gate needs.

use std::fmt::Write as _;

use crate::runner::{self, Family, RunSettings};
use tpsim::SimulationConfig;

/// One measured point of the profile suite.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfilePoint {
    /// Stable point id (e.g. `fig5.x/8-nodes`), the key CI compares on.
    pub id: String,
    /// Events popped by the simulation kernel.
    pub events: u64,
    /// Best observed wall-clock time (ms).
    pub wall_ms: f64,
    /// Best observed events per wall-clock second.
    pub events_per_sec: f64,
    /// Wall-clock microseconds per commit-time coherence fan-out (0 when the
    /// run had no such fan-outs, e.g. single-node points).
    pub fanout_us_per_commit: f64,
    /// Per-device request-scheduler counters of the simulated run, summed
    /// over the devices (`None` when the point runs with the scheduler
    /// disabled).  Simulated results, not wall-clock: byte-identical across
    /// reps and kernel thread counts.
    pub sched: Option<SchedulerProfile>,
}

/// Request-scheduler counters of one profile point, summed over the point's
/// devices (the queue depth is the worst per-device mean).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SchedulerProfile {
    /// Worst per-device mean pending read-queue depth.
    pub mean_queue_depth: f64,
    /// Reads that joined an existing pending or in-flight request.
    pub coalesced: u64,
    /// Extra pages carried by merged adjacent-page accesses.
    pub merged_adjacent: u64,
    /// Prefetched pages that were referenced before leaving the pool.
    pub prefetch_hits: u64,
    /// Prefetched pages dropped unreferenced (or already resident).
    pub prefetch_wasted: u64,
}

/// Sums the per-device scheduler sections of a report into one
/// [`SchedulerProfile`]; `None` when no device ran a scheduler.
fn scheduler_profile(report: &tpsim::SimulationReport) -> Option<SchedulerProfile> {
    let mut sched = SchedulerProfile::default();
    let mut any = false;
    for d in &report.devices {
        if let Some(s) = &d.scheduler {
            any = true;
            sched.mean_queue_depth = sched.mean_queue_depth.max(s.mean_queue_depth);
            sched.coalesced += s.coalesced;
            sched.merged_adjacent += s.merged_adjacent;
            sched.prefetch_hits += s.prefetch_hits;
            sched.prefetch_wasted += s.prefetch_wasted;
        }
    }
    any.then_some(sched)
}

/// The fixed configurations of the profile suite, as `(id, config, family)`.
fn suite_points() -> Vec<(String, SimulationConfig, Family)> {
    let mut points: Vec<(String, SimulationConfig, Family)> = [1usize, 2, 4, 8, 64]
        .iter()
        .map(|&n| {
            (
                format!("fig5.x/{n}-nodes"),
                runner::data_sharing_point(n, 60.0),
                Family::DebitCredit,
            )
        })
        .collect();
    points.push((
        "quickstart/disk".to_string(),
        runner::fig4_2_point(tpsim::presets::DebitCreditStorage::Disk, 100.0),
        Family::DebitCredit,
    ));
    points.push((
        "fig6.x/noforce-disk-log".to_string(),
        runner::recovery_point(false, false, 500.0, 150.0),
        Family::RecoveryCrash,
    ));
    points.push((
        "fig11.x/8-nodes-sched".to_string(),
        runner::scheduler_point(
            8,
            60.0,
            storage::IoSchedulerParams {
                coalesce: true,
                elevator: true,
                prefetch_depth: 4,
                ..storage::IoSchedulerParams::default()
            },
            false,
        ),
        Family::DebitCredit,
    ));
    points
}

/// Runs the profile suite at full experiment scale: every point `reps` times
/// sequentially, keeping the fastest run (wall-clock noise is one-sided).
///
/// `kernel_threads` selects the event kernel *inside* each run (0/1 = the
/// sequential kernel, >= 2 = the sharded conservative-lookahead kernel with
/// that many workers, capped at one per simulated node).  Every point's
/// simulated result — and therefore its `events` count — is byte-identical
/// across thread counts; only `wall_ms` moves, which is exactly what makes
/// the committed sequential baseline comparable to a `--threads` re-run.
pub fn kernel_profile_suite(reps: usize, kernel_threads: usize) -> Vec<ProfilePoint> {
    let mut settings = RunSettings::full();
    settings.parallel = false;
    settings.kernel_threads = kernel_threads;
    let reps = reps.max(1);
    suite_points()
        .into_iter()
        .map(|(id, mut config, family)| {
            // Derive the seed exactly as a one-point sweep would, so the
            // simulated workload (and its event count) matches what
            // `run_sweep_profiled` of the same point produces and the
            // committed baseline stays comparable.
            config.seed = runner::derive_run_seed(config.seed, 0);
            let mut best: Option<ProfilePoint> = None;
            for _ in 0..reps {
                let (report, p) = runner::run_point_profiled(&settings, config.clone(), family);
                let candidate = ProfilePoint {
                    id: id.clone(),
                    events: p.events,
                    wall_ms: p.wall_ms,
                    events_per_sec: p.events_per_sec,
                    fanout_us_per_commit: p.fanout_us_per_commit(),
                    sched: scheduler_profile(&report),
                };
                let better = best
                    .as_ref()
                    .is_none_or(|b| candidate.events_per_sec > b.events_per_sec);
                if better {
                    best = Some(candidate);
                }
            }
            best.expect("at least one rep")
        })
        .collect()
}

/// The parallelism under which a profile emission was measured, recorded in
/// the JSON's `scaling` section so a committed baseline is never silently
/// compared against numbers from a different kernel configuration or a much
/// narrower host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScalingInfo {
    /// Sharded-kernel worker threads the suite ran with (0 = sequential).
    pub kernel_threads: usize,
    /// `std::thread::available_parallelism()` of the measuring host.
    pub host_parallelism: usize,
}

impl ScalingInfo {
    /// Scaling info for a suite run with `kernel_threads` on this host.
    pub fn current(kernel_threads: usize) -> Self {
        Self {
            kernel_threads,
            host_parallelism: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

/// One labelled snapshot in the `history` section.
#[derive(Debug, Clone)]
pub struct HistoryEntry {
    /// Snapshot label (e.g. `PR4-pre: binary heap + hashmap engine`).
    pub label: String,
    /// The snapshot's measured points.
    pub points: Vec<ProfilePoint>,
}

fn render_points(out: &mut String, points: &[ProfilePoint], indent: &str) {
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        // Scheduler counters ride along only on scheduler-enabled points;
        // the baseline parser extracts keys by name and ignores them.
        let sched = match &p.sched {
            Some(s) => format!(
                ", \"sched_queue_depth\": {:.3}, \"sched_coalesced\": {}, \
                 \"sched_merged_adjacent\": {}, \"sched_prefetch_hits\": {}, \
                 \"sched_prefetch_wasted\": {}",
                s.mean_queue_depth,
                s.coalesced,
                s.merged_adjacent,
                s.prefetch_hits,
                s.prefetch_wasted
            ),
            None => String::new(),
        };
        let _ = writeln!(
            out,
            "{indent}{{\"id\": \"{}\", \"events\": {}, \"wall_ms\": {:.3}, \
             \"events_per_sec\": {:.0}, \"fanout_us_per_commit\": {:.3}{sched}}}{comma}",
            p.id, p.events, p.wall_ms, p.events_per_sec, p.fanout_us_per_commit
        );
    }
}

/// Renders `BENCH_kernel.json`: the measurement's scaling configuration, the
/// current baseline points and the historical snapshots.
pub fn render_bench_json(
    points: &[ProfilePoint],
    scaling: &ScalingInfo,
    history: &[HistoryEntry],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str(
        "  \"description\": \"Kernel wall-clock baseline: events/sec per profile-suite point \
         (regenerate: cargo run --release -p tpsim-bench --bin experiments -- --profile)\",\n",
    );
    let _ = writeln!(
        out,
        "  \"scaling\": {{\"kernel_threads\": {}, \"host_parallelism\": {}}},",
        scaling.kernel_threads, scaling.host_parallelism
    );
    out.push_str("  \"points\": [\n");
    render_points(&mut out, points, "    ");
    out.push_str("  ],\n");
    out.push_str("  \"history\": [\n");
    for (i, h) in history.iter().enumerate() {
        let comma = if i + 1 < history.len() { "," } else { "" };
        let _ = writeln!(out, "    {{\"label\": \"{}\", \"points\": [", h.label);
        render_points(&mut out, &h.points, "      ");
        let _ = writeln!(out, "    ]}}{comma}");
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

/// Parses the *top-level* `points` array of a `BENCH_kernel.json` produced by
/// [`render_bench_json`], returning `(id, events_per_sec)` pairs.  History
/// entries are ignored.  Returns an error for files this module did not
/// write.
pub fn parse_baseline(json: &str) -> Result<Vec<(String, f64)>, String> {
    let start = json
        .find("\"points\": [")
        .ok_or("no top-level \"points\" array")?;
    let tail = &json[start..];
    let end = tail.find(']').ok_or("unterminated points array")?;
    let body = &tail[..end];
    let mut out = Vec::new();
    for line in body.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with('{') {
            continue;
        }
        let id = extract_str(line, "id").ok_or_else(|| format!("no id in: {line}"))?;
        let eps = extract_num(line, "events_per_sec")
            .ok_or_else(|| format!("no events_per_sec in: {line}"))?;
        out.push((id, eps));
    }
    if out.is_empty() {
        return Err("empty points array".to_string());
    }
    Ok(out)
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

fn extract_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Compares a fresh suite run against the committed baseline: every baseline
/// point re-measured in `fresh` must reach at least `1 - tolerance` of its
/// committed events/sec.  Returns a human-readable table on success and the
/// offending points on failure.
pub fn check_against_baseline(
    fresh: &[ProfilePoint],
    baseline: &[(String, f64)],
    tolerance: f64,
) -> Result<String, String> {
    let mut table = String::new();
    let mut failures = Vec::new();
    let _ = writeln!(
        table,
        "{:<26} {:>16} {:>16} {:>8}",
        "point", "baseline [ev/s]", "fresh [ev/s]", "ratio"
    );
    for (id, base_eps) in baseline {
        let Some(f) = fresh.iter().find(|p| &p.id == id) else {
            failures.push(format!("point {id} missing from the fresh run"));
            continue;
        };
        let ratio = f.events_per_sec / base_eps.max(1e-9);
        let _ = writeln!(
            table,
            "{:<26} {:>16.0} {:>16.0} {:>8.2}",
            id, base_eps, f.events_per_sec, ratio
        );
        if ratio < 1.0 - tolerance {
            failures.push(format!(
                "{id}: events/sec dropped to {ratio:.2}x of the committed baseline \
                 ({:.0} vs {base_eps:.0})",
                f.events_per_sec
            ));
        }
    }
    if failures.is_empty() {
        Ok(table)
    } else {
        Err(format!(
            "{table}\nperf regression:\n{}",
            failures.join("\n")
        ))
    }
}

/// Compares a sharded-kernel suite run against a sequential run of the same
/// build: the scaling gate for CI.
///
/// Two layers, because the host decides what a parallel run can prove:
///
/// * **Determinism (always):** every point's `events` count must be equal in
///   both runs.  The sharded kernel promises byte-identical results, and the
///   event count is the cheapest observable proxy for that promise.
/// * **Wall-clock (only when `scaling.host_parallelism >= 2`):** each point's
///   parallel events/sec must reach at least `1 - tolerance` of sequential,
///   and the multi-node fig5.x points in aggregate (total events over total
///   wall-clock) must not be slower than sequential.  On a single-CPU host
///   both assertions are skipped — there the worker threads time-slice one
///   core and a parallel run measures pure synchronisation overhead, which
///   is not a regression in the kernel.
pub fn check_scaling(
    sequential: &[ProfilePoint],
    parallel: &[ProfilePoint],
    scaling: &ScalingInfo,
    tolerance: f64,
) -> Result<String, String> {
    let mut table = String::new();
    let mut failures = Vec::new();
    let _ = writeln!(
        table,
        "{:<26} {:>14} {:>14} {:>8}",
        "point", "seq [ev/s]", "par [ev/s]", "ratio"
    );
    let gate_wall_clock = scaling.host_parallelism >= 2;
    let mut agg_seq_events = 0u64;
    let mut agg_seq_wall = 0.0f64;
    let mut agg_par_wall = 0.0f64;
    for s in sequential {
        let Some(p) = parallel.iter().find(|p| p.id == s.id) else {
            failures.push(format!("point {} missing from the parallel run", s.id));
            continue;
        };
        if p.events != s.events {
            failures.push(format!(
                "{}: parallel run popped {} events, sequential {} — the sharded \
                 kernel diverged from the sequential oracle",
                s.id, p.events, s.events
            ));
        }
        let ratio = p.events_per_sec / s.events_per_sec.max(1e-9);
        let _ = writeln!(
            table,
            "{:<26} {:>14.0} {:>14.0} {:>8.2}",
            s.id, s.events_per_sec, p.events_per_sec, ratio
        );
        if s.id.starts_with("fig5.x/") && !s.id.ends_with("/1-nodes") {
            agg_seq_events += s.events;
            agg_seq_wall += s.wall_ms;
            agg_par_wall += p.wall_ms;
        }
        if gate_wall_clock && ratio < 1.0 - tolerance {
            failures.push(format!(
                "{}: parallel events/sec is {ratio:.2}x of sequential \
                 ({:.0} vs {:.0})",
                s.id, p.events_per_sec, s.events_per_sec
            ));
        }
    }
    if agg_seq_wall > 0.0 && agg_par_wall > 0.0 {
        let speedup = agg_seq_wall / agg_par_wall;
        let _ = writeln!(
            table,
            "multi-node fig5.x aggregate: {} events, seq {:.1} ms, par {:.1} ms, \
             speedup {speedup:.2}x",
            agg_seq_events, agg_seq_wall, agg_par_wall
        );
        if gate_wall_clock && speedup < 1.0 {
            failures.push(format!(
                "multi-node fig5.x aggregate speedup {speedup:.2}x < 1.0: the sharded \
                 kernel is slower than sequential on a host with {} CPUs",
                scaling.host_parallelism
            ));
        }
    }
    if !gate_wall_clock {
        let _ = writeln!(
            table,
            "(single-CPU host: wall-clock assertions skipped, determinism checked)"
        );
    }
    if failures.is_empty() {
        Ok(table)
    } else {
        Err(format!("{table}\nscaling gate:\n{}", failures.join("\n")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_points() -> Vec<ProfilePoint> {
        vec![
            ProfilePoint {
                id: "fig5.x/8-nodes".to_string(),
                events: 1_000_000,
                wall_ms: 50.0,
                events_per_sec: 20_000_000.0,
                fanout_us_per_commit: 1.25,
                sched: Some(SchedulerProfile {
                    mean_queue_depth: 2.5,
                    coalesced: 10,
                    merged_adjacent: 4,
                    prefetch_hits: 7,
                    prefetch_wasted: 1,
                }),
            },
            ProfilePoint {
                id: "quickstart/disk".to_string(),
                events: 123_456,
                wall_ms: 10.5,
                events_per_sec: 11_757_714.0,
                fanout_us_per_commit: 0.0,
                sched: None,
            },
        ]
    }

    #[test]
    fn json_roundtrips_through_the_parser() {
        let history = vec![HistoryEntry {
            label: "PR4-pre".to_string(),
            points: vec![ProfilePoint {
                id: "fig5.x/8-nodes".to_string(),
                events: 1_000_000,
                wall_ms: 100.0,
                events_per_sec: 10_000_000.0,
                fanout_us_per_commit: 2.5,
                sched: None,
            }],
        }];
        let scaling = ScalingInfo {
            kernel_threads: 2,
            host_parallelism: 8,
        };
        let json = render_bench_json(&sample_points(), &scaling, &history);
        assert!(json.contains("\"scaling\": {\"kernel_threads\": 2, \"host_parallelism\": 8}"));
        // The fan-out column rides along in every point; the baseline parser
        // must keep working with (and ignoring) it.
        assert!(json.contains("\"fanout_us_per_commit\": 1.250"));
        // Scheduler counters appear only on scheduler-enabled points; the
        // parser must likewise ignore them.
        assert!(json.contains("\"sched_coalesced\": 10"));
        assert!(json.contains("\"sched_queue_depth\": 2.500"));
        let parsed = parse_baseline(&json).expect("parse own output");
        // Only the top-level points, not the history snapshot.
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "fig5.x/8-nodes");
        assert!((parsed[0].1 - 20_000_000.0).abs() < 1.0);
        assert_eq!(parsed[1].0, "quickstart/disk");
    }

    #[test]
    fn baseline_gate_passes_within_tolerance_and_fails_beyond() {
        let baseline = vec![("fig5.x/8-nodes".to_string(), 20_000_000.0)];
        let mut fresh = sample_points();
        // 80% of baseline at 30% tolerance: fine.
        fresh[0].events_per_sec = 16_000_000.0;
        assert!(check_against_baseline(&fresh, &baseline, 0.3).is_ok());
        // 60% of baseline: regression.
        fresh[0].events_per_sec = 12_000_000.0;
        let err = check_against_baseline(&fresh, &baseline, 0.3).unwrap_err();
        assert!(err.contains("perf regression"), "{err}");
        // A missing point is a failure too.
        let missing = vec![("gone".to_string(), 1.0)];
        assert!(check_against_baseline(&fresh, &missing, 0.3).is_err());
    }

    fn scaling_pair(par_wall_factor: f64) -> (Vec<ProfilePoint>, Vec<ProfilePoint>) {
        let seq: Vec<ProfilePoint> = [("fig5.x/1-nodes", 100_000u64), ("fig5.x/8-nodes", 800_000)]
            .iter()
            .map(|&(id, events)| ProfilePoint {
                id: id.to_string(),
                events,
                wall_ms: 100.0,
                events_per_sec: events as f64 / 0.1,
                fanout_us_per_commit: 0.5,
                sched: None,
            })
            .collect();
        let par = seq
            .iter()
            .map(|p| ProfilePoint {
                wall_ms: p.wall_ms * par_wall_factor,
                events_per_sec: p.events_per_sec / par_wall_factor,
                ..p.clone()
            })
            .collect();
        (seq, par)
    }

    #[test]
    fn scaling_gate_checks_determinism_on_any_host() {
        let single_cpu = ScalingInfo {
            kernel_threads: 2,
            host_parallelism: 1,
        };
        let (seq, mut par) = scaling_pair(1.0);
        assert!(check_scaling(&seq, &par, &single_cpu, 0.1).is_ok());
        par[1].events += 1;
        let err = check_scaling(&seq, &par, &single_cpu, 0.1).unwrap_err();
        assert!(err.contains("diverged from the sequential oracle"), "{err}");
        // A missing point fails even on one CPU.
        let err = check_scaling(&seq, &par[..1], &single_cpu, 0.1).unwrap_err();
        assert!(err.contains("missing from the parallel run"), "{err}");
    }

    #[test]
    fn scaling_gate_skips_wall_clock_on_a_single_cpu_host() {
        let single_cpu = ScalingInfo {
            kernel_threads: 2,
            host_parallelism: 1,
        };
        // 20x slower in parallel: pure sync overhead on one core, not a gate
        // failure — only the skip note is emitted.
        let (seq, par) = scaling_pair(20.0);
        let table = check_scaling(&seq, &par, &single_cpu, 0.1).expect("skipped on 1 CPU");
        assert!(table.contains("wall-clock assertions skipped"), "{table}");
    }

    #[test]
    fn scaling_gate_enforces_wall_clock_on_a_multi_cpu_host() {
        let multi_cpu = ScalingInfo {
            kernel_threads: 2,
            host_parallelism: 8,
        };
        // Slightly faster than sequential: passes per-point and aggregate.
        let (seq, par) = scaling_pair(0.9);
        let table = check_scaling(&seq, &par, &multi_cpu, 0.1).expect("speedup passes");
        assert!(table.contains("speedup 1.11x"), "{table}");
        // 30% slower per point (and in aggregate): both layers fire.
        let (seq, par) = scaling_pair(1.3);
        let err = check_scaling(&seq, &par, &multi_cpu, 0.1).unwrap_err();
        assert!(err.contains("of sequential"), "{err}");
        assert!(err.contains("aggregate speedup"), "{err}");
    }

    #[test]
    fn suite_covers_the_fig5x_sweep() {
        let ids: Vec<String> = suite_points().into_iter().map(|(id, _, _)| id).collect();
        for n in [1, 2, 4, 8, 64] {
            assert!(ids.contains(&format!("fig5.x/{n}-nodes")));
        }
        assert!(ids.iter().any(|i| i.starts_with("quickstart/")));
        assert!(ids.iter().any(|i| i.starts_with("fig6.x/")));
        assert!(ids.contains(&"fig11.x/8-nodes-sched".to_string()));
    }
}
