//! A minimal, dependency-free stand-in for the subset of the Criterion API
//! the experiment benches use.
//!
//! The workspace builds in environments without network access to a crate
//! registry, so the benches cannot depend on the real `criterion` crate.
//! This module provides the same surface — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`], [`black_box`] — with
//! a simple fixed-sample timing loop and a plain-text report, which is plenty
//! for whole-simulation iterations where each sample is milliseconds long.

use std::time::{Duration, Instant};

/// Prevents the compiler from optimising a benchmark result away.
#[inline]
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Timing summary of one benchmark function.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Group name / function label.
    pub id: String,
    /// Number of timed iterations.
    pub iterations: u64,
    /// Mean wall-clock time per iteration.
    pub mean: Duration,
    /// Fastest observed iteration.
    pub min: Duration,
    /// Slowest observed iteration.
    pub max: Duration,
}

/// Top-level benchmark driver (drop-in for `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    results: Vec<Sample>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark function.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the un-timed warm-up budget per benchmark function.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Sets the timed measurement budget per benchmark function.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Opens a named group of benchmark functions.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Prints the collected timings.
    pub fn final_summary(&self) {
        for s in &self.results {
            println!(
                "{:<60} {:>10.3} ms/iter (min {:.3}, max {:.3}, {} iters)",
                s.id,
                s.mean.as_secs_f64() * 1e3,
                s.min.as_secs_f64() * 1e3,
                s.max.as_secs_f64() * 1e3,
                s.iterations
            );
        }
    }
}

/// A named group of benchmark functions.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs `f` under the group's timing policy and records the result.
    pub fn bench_function(&mut self, label: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let id = format!("{}/{}", self.name, label.into());
        let mut bencher = Bencher {
            sample_size: self.criterion.sample_size,
            warm_up_time: self.criterion.warm_up_time,
            measurement_time: self.criterion.measurement_time,
            sample: None,
        };
        f(&mut bencher);
        let mut sample = bencher.sample.unwrap_or(Sample {
            id: String::new(),
            iterations: 0,
            mean: Duration::ZERO,
            min: Duration::ZERO,
            max: Duration::ZERO,
        });
        sample.id = id;
        eprintln!(
            "bench {:<58} {:>10.3} ms/iter ({} iters)",
            sample.id,
            sample.mean.as_secs_f64() * 1e3,
            sample.iterations
        );
        self.criterion.results.push(sample);
    }

    /// Ends the group (kept for Criterion API compatibility).
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark function.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample: Option<Sample>,
}

impl Bencher {
    /// Times `routine`: warms up until the warm-up budget is spent, then runs
    /// timed iterations until either the sample size is reached or the
    /// measurement budget is exhausted (at least one timed iteration always
    /// runs).
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // analyzer: allow(wall-clock): the bench harness measures host time by design
        let warm_up_end = Instant::now() + self.warm_up_time;
        // analyzer: allow(wall-clock): warm-up budget
        while Instant::now() < warm_up_end {
            black_box(routine());
        }
        let mut iterations = 0u64;
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        let measure_start = Instant::now(); // analyzer: allow(wall-clock): measurement budget
        while iterations < self.sample_size as u64
            && (iterations == 0 || measure_start.elapsed() < self.measurement_time)
        {
            let t0 = Instant::now(); // analyzer: allow(wall-clock): per-iteration timing
            black_box(routine());
            let dt = t0.elapsed();
            total += dt;
            min = min.min(dt);
            max = max.max(dt);
            iterations += 1;
        }
        self.sample = Some(Sample {
            id: String::new(),
            iterations,
            mean: total / iterations.max(1) as u32,
            min,
            max,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_at_least_one_iteration() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::ZERO)
            .measurement_time(Duration::from_millis(50));
        let mut group = c.benchmark_group("g");
        let mut calls = 0u32;
        group.bench_function("f", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        group.finish();
        assert!(calls >= 1);
        assert_eq!(c.results.len(), 1);
        assert_eq!(c.results[0].id, "g/f");
        assert!(c.results[0].iterations >= 1);
        c.final_summary();
    }
}
