//! End-to-end integration tests of the Debit-Credit workload on the full
//! simulator stack (workload generation → locking → buffer management →
//! device models → report).
//!
//! These tests use a scaled-down database and short simulated intervals so
//! they run quickly in debug builds, but they check the *qualitative* results
//! the paper reports for the baseline configurations.

use tpsim::presets::{
    debit_credit_config, debit_credit_workload, log_allocation_config, DebitCreditStorage,
    LogVariant, DB_UNIT, LOG_UNIT,
};
use tpsim::Simulation;

fn quick(mut config: tpsim::SimulationConfig) -> tpsim::SimulationConfig {
    config.warmup_ms = 500.0;
    config.measure_ms = 3_000.0;
    config
}

#[test]
fn disk_based_response_time_is_dominated_by_io() {
    let config = quick(debit_credit_config(DebitCreditStorage::Disk, 50.0));
    let report = Simulation::new(config, debit_credit_workload(100)).run();
    assert!(report.completed > 50, "completed {}", report.completed);
    // ≈2 database disk I/Os (read miss + victim write-back), 1 log I/O and
    // ≈5 ms CPU: the mean must clearly exceed the pure CPU time but stay in a
    // plausible range (paper: ≈45 ms).
    assert!(
        report.response_time.mean > 25.0 && report.response_time.mean < 90.0,
        "mean response {}",
        report.response_time.mean
    );
    // Buffer behaviour: the ACCOUNT partition practically never hits.
    assert!(report.buffer.per_partition[1].mm_hit_ratio() < 0.25);
    // BRANCH/TELLER pages are hot and hit far more often than ACCOUNT pages
    // (in the short scaled run some BRANCH pages are touched for the first
    // time during the measurement interval, so the ratio stays below the
    // steady-state ≈100 %).
    assert!(
        report.buffer.per_partition[0].mm_hit_ratio() > 0.6,
        "BRANCH/TELLER hit ratio {}",
        report.buffer.per_partition[0].mm_hit_ratio()
    );
}

#[test]
fn every_debit_credit_transaction_performs_four_references() {
    let config = quick(debit_credit_config(DebitCreditStorage::Ssd, 50.0));
    let report = Simulation::new(config, debit_credit_workload(100)).run();
    let refs = report.buffer.references();
    // Four object references per completed transaction (plus those of
    // transactions still in flight at the end, hence >=).
    assert!(
        refs >= report.completed * 4,
        "references {refs} vs completed {}",
        report.completed
    );
    // All references are writes for Debit-Credit, so every transaction is an
    // update transaction and lock requests are issued for the three locked
    // partitions (HISTORY is not locked).
    assert!(report.locks.requests >= report.completed * 3);
}

#[test]
fn storage_hierarchy_ordering_matches_fig_4_2() {
    // NVEM-resident < SSD < write buffer < disk (response time ordering).
    let mut results = Vec::new();
    for storage in [
        DebitCreditStorage::NvemResident,
        DebitCreditStorage::Ssd,
        DebitCreditStorage::DiskWithNvemWriteBuffer,
        DebitCreditStorage::Disk,
    ] {
        let config = quick(debit_credit_config(storage, 50.0));
        let report = Simulation::new(config, debit_credit_workload(100)).run();
        results.push((storage, report.response_time.mean));
    }
    for pair in results.windows(2) {
        assert!(
            pair[0].1 < pair[1].1,
            "expected {:?} ({:.2} ms) faster than {:?} ({:.2} ms)",
            pair[0].0,
            pair[0].1,
            pair[1].0,
            pair[1].1
        );
    }
    // NVEM-resident is close to the CPU-bound minimum of ≈5 ms.
    assert!(results[0].1 < 12.0, "NVEM-resident mean {}", results[0].1);
}

#[test]
fn memory_resident_pays_only_for_logging() {
    let config = quick(debit_credit_config(
        DebitCreditStorage::MemoryResident,
        50.0,
    ));
    let report = Simulation::new(config, debit_credit_workload(100)).run();
    // All database references hit (memory-resident partitions).
    assert!(
        report.mm_hit_ratio() > 0.999,
        "hit {}",
        report.mm_hit_ratio()
    );
    // Response time ≈ CPU (5 ms) + log disk I/O (6.4 ms).
    assert!(
        report.response_time.mean > 6.0 && report.response_time.mean < 25.0,
        "mean {}",
        report.response_time.mean
    );
    // No database disk unit activity beyond the log.
    assert_eq!(report.devices[DB_UNIT].stats.reads, 0);
    assert!(report.devices[LOG_UNIT].stats.writes > 0);
}

#[test]
fn log_on_single_disk_saturates_but_nvem_log_does_not() {
    // Fig. 4.1: a single 5 ms log disk limits throughput to ≈200 TPS while an
    // NVEM-resident log sustains the offered load.
    let offered = 300.0;
    let single = Simulation::new(
        quick(log_allocation_config(LogVariant::SingleDisk, offered)),
        debit_credit_workload(100),
    )
    .run();
    let nvem = Simulation::new(
        quick(log_allocation_config(LogVariant::Nvem, offered)),
        debit_credit_workload(100),
    )
    .run();
    assert!(
        single.devices[LOG_UNIT].disk_utilization > 0.9,
        "log disk utilization {}",
        single.devices[LOG_UNIT].disk_utilization
    );
    assert!(single.throughput_tps < 250.0);
    assert!(
        nvem.throughput_tps > 260.0,
        "NVEM log throughput {}",
        nvem.throughput_tps
    );
    assert!(nvem.response_time.mean < single.response_time.mean);
}

#[test]
fn nonvolatile_log_cache_keeps_response_times_low_below_saturation() {
    // Fig. 4.1: with a non-volatile disk cache as log write buffer, response
    // times stay low (log writes absorbed) as long as the disk keeps up.
    let plain = Simulation::new(
        quick(log_allocation_config(LogVariant::SingleDisk, 150.0)),
        debit_credit_workload(100),
    )
    .run();
    let cached = Simulation::new(
        quick(log_allocation_config(LogVariant::SingleDiskNvCache, 150.0)),
        debit_credit_workload(100),
    )
    .run();
    assert!(
        cached.response_time.mean < plain.response_time.mean,
        "cached {} vs plain {}",
        cached.response_time.mean,
        plain.response_time.mean
    );
    // The absorbed log writes show up as absorbed writes at the log unit.
    assert!(cached.devices[LOG_UNIT].stats.absorbed_writes > 0);
}

#[test]
fn reports_are_reproducible_for_identical_seeds_and_differ_across_seeds() {
    let base = quick(debit_credit_config(DebitCreditStorage::Disk, 80.0));
    let a = Simulation::new(base.clone(), debit_credit_workload(100)).run();
    let b = Simulation::new(base.clone(), debit_credit_workload(100)).run();
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.buffer, b.buffer);
    assert!((a.response_time.mean - b.response_time.mean).abs() < 1e-9);

    let mut other = base;
    other.seed = 999;
    let c = Simulation::new(other, debit_credit_workload(100)).run();
    // A different seed produces a different (but statistically similar) run.
    assert!(c.completed > 0);
    assert!(
        (c.response_time.mean - a.response_time.mean).abs() > 1e-9,
        "different seeds should not give bit-identical results"
    );
}
