//! Integration tests for the trace-driven caching experiment (§4.6,
//! Fig. 4.6/4.7) and the lock-contention experiment (§4.7, Fig. 4.8).

use lockmgr::CcMode;
use tpsim::presets::{
    contention_config, contention_workload, trace_config, trace_workload, ContentionAllocation,
    TraceStorage, DB_UNIT,
};
use tpsim::Simulation;

fn run_trace(mm_pages: usize, storage: TraceStorage) -> tpsim::SimulationReport {
    // 55 TPS (≈60 % CPU utilization for the ≈56-reference transactions) and a
    // long warm-up so the buffers see a large part of the trace's referenced
    // set before measuring; with colder buffers the compulsory misses shared
    // by all configurations would mask the caching differences under test.
    let mut config = trace_config(mm_pages, storage, 55.0);
    config.warmup_ms = 2_500.0;
    config.measure_ms = 6_000.0;
    Simulation::new(config, trace_workload(8, 7)).run()
}

fn run_contention(
    allocation: ContentionAllocation,
    granularity: CcMode,
    tps: f64,
) -> tpsim::SimulationReport {
    let mut config = contention_config(allocation, granularity, tps);
    config.warmup_ms = 500.0;
    config.measure_ms = 4_000.0;
    Simulation::new(config, contention_workload()).run()
}

#[test]
fn trace_workload_is_read_dominated_and_completes() {
    let report = run_trace(1_000, TraceStorage::MmOnly);
    assert!(report.completed > 20, "completed {}", report.completed);
    // Read-dominated: far fewer dirty evictions than evictions.
    assert!(
        report.buffer.dirty_evictions * 5 < report.buffer.mm_evictions.max(1),
        "dirty {} of {}",
        report.buffer.dirty_evictions,
        report.buffer.mm_evictions
    );
    // Several transaction types appear in the measured interval.
    assert!(report.per_type.len() >= 4);
}

#[test]
fn all_second_level_caches_help_the_read_dominated_trace() {
    // Fig. 4.6/4.7: for the read-dominated trace even volatile disk caches are
    // very effective (unlike for Debit-Credit).  This comparison runs at a
    // lower rate and a smaller main-memory buffer than the other trace tests:
    // at 55 TPS the scaled-down trace is dominated by lock waits, which
    // drowns the caching effect under test in contention noise.
    let cached = |mm, s| {
        let mut config = trace_config(mm, s, 25.0);
        config.warmup_ms = 2_500.0;
        config.measure_ms = 8_000.0;
        Simulation::new(config, trace_workload(8, 7)).run()
    };
    let baseline = cached(500, TraceStorage::MmOnly);
    let volatile = cached(500, TraceStorage::VolatileDiskCache(8_000));
    let nonvolatile = cached(500, TraceStorage::NonVolatileDiskCache(8_000));
    let nvem = cached(500, TraceStorage::NvemCache(8_000));
    for (name, r) in [
        ("volatile", &volatile),
        ("non-volatile", &nonvolatile),
        ("nvem", &nvem),
    ] {
        assert!(
            r.response_time.mean < baseline.response_time.mean * 0.9,
            "{name}: {} vs baseline {}",
            r.response_time.mean,
            baseline.response_time.mean
        );
    }
    // Volatile and non-volatile disk caches achieve similar read hit ratios
    // for this workload (few writes → few write misses).
    let v_hits = volatile.disk_cache_hit_ratio(DB_UNIT);
    let nv_hits = nonvolatile.disk_cache_hit_ratio(DB_UNIT);
    assert!(v_hits > 0.05, "volatile hits {v_hits}");
    assert!(
        (v_hits - nv_hits).abs() < 0.1,
        "volatile {v_hits} vs non-volatile {nv_hits}"
    );
    // NVEM caching is the most effective second-level cache.
    assert!(nvem.response_time.mean <= nonvolatile.response_time.mean * 1.05);
    assert!(nvem.nvem_hit_ratio() > 0.0);
}

#[test]
fn full_semiconductor_allocation_beats_second_level_caching_for_the_trace() {
    let nvem_cache = run_trace(1_000, TraceStorage::NvemCache(2_000));
    let ssd = run_trace(1_000, TraceStorage::Ssd);
    let resident = run_trace(1_000, TraceStorage::NvemResident);
    assert!(ssd.response_time.mean < nvem_cache.response_time.mean);
    assert!(resident.response_time.mean < ssd.response_time.mean);
}

#[test]
fn larger_mm_buffers_matter_most_without_second_level_caches() {
    // Fig. 4.6: increasing the MM buffer helps the disk-based configuration a
    // lot, but only marginally when a second-level cache is present.
    let disk_small = run_trace(200, TraceStorage::MmOnly);
    let disk_large = run_trace(2_000, TraceStorage::MmOnly);
    let cached_small = run_trace(200, TraceStorage::NvemCache(2_000));
    let cached_large = run_trace(2_000, TraceStorage::NvemCache(2_000));
    let disk_gain = disk_small.response_time.mean - disk_large.response_time.mean;
    let cached_gain = cached_small.response_time.mean - cached_large.response_time.mean;
    assert!(disk_gain > 0.0);
    assert!(
        cached_gain < disk_gain,
        "cached gain {cached_gain} vs disk gain {disk_gain}"
    );
}

#[test]
fn page_locking_thrashes_on_disk_but_not_with_nvem_residence() {
    // Fig. 4.8: with page-level locks the disk-based allocation cannot sustain
    // the offered load (lock thrashing), while the NVEM-resident allocation
    // processes it easily.
    let offered = 250.0;
    let disk = run_contention(ContentionAllocation::DiskBased, CcMode::Page, offered);
    let nvem = run_contention(ContentionAllocation::NvemResident, CcMode::Page, offered);
    assert!(
        disk.throughput_tps < offered * 0.8,
        "disk-based page locking should thrash, throughput {}",
        disk.throughput_tps
    );
    assert!(
        nvem.throughput_tps > offered * 0.85,
        "NVEM-resident throughput {}",
        nvem.throughput_tps
    );
    assert!(nvem.response_time.mean < disk.response_time.mean * 0.2);
    // The thrashing configuration shows heavy lock contention.
    assert!(disk.lock_conflict_ratio() > nvem.lock_conflict_ratio());
}

#[test]
fn object_locking_removes_the_lock_bottleneck() {
    let offered = 250.0;
    let page = run_contention(ContentionAllocation::DiskBased, CcMode::Page, offered);
    let object = run_contention(ContentionAllocation::DiskBased, CcMode::Object, offered);
    assert!(
        object.throughput_tps > page.throughput_tps * 1.2,
        "object {} vs page {}",
        object.throughput_tps,
        page.throughput_tps
    );
    assert!(object.lock_conflict_ratio() < page.lock_conflict_ratio());
    assert!(object.response_time.mean < page.response_time.mean);
}

#[test]
fn mixed_allocation_is_between_disk_and_nvem_with_object_locks() {
    let offered = 200.0;
    let disk = run_contention(ContentionAllocation::DiskBased, CcMode::Object, offered);
    let mixed = run_contention(ContentionAllocation::Mixed, CcMode::Object, offered);
    let nvem = run_contention(ContentionAllocation::NvemResident, CcMode::Object, offered);
    assert!(
        mixed.response_time.mean < disk.response_time.mean,
        "mixed {} vs disk {}",
        mixed.response_time.mean,
        disk.response_time.mean
    );
    assert!(
        nvem.response_time.mean < mixed.response_time.mean,
        "nvem {} vs mixed {}",
        nvem.response_time.mean,
        mixed.response_time.mean
    );
}

#[test]
fn deadlocks_are_detected_and_resolved_under_contention() {
    // Run an aggressive configuration long enough that some deadlocks occur;
    // the simulation must keep making progress (aborted transactions restart
    // and eventually commit).
    let report = run_contention(ContentionAllocation::DiskBased, CcMode::Page, 200.0);
    assert!(report.completed > 50);
    // Deadlocks may or may not occur depending on timing, but if they do the
    // abort counter and the lock-manager counter agree.
    assert_eq!(report.aborts, report.locks.deadlocks);
}
