//! Integration tests for the FORCE/NOFORCE comparison (§4.4, Fig. 4.3) and
//! for the interplay of allocation strategies with the update strategy.

use bufmgr::UpdateStrategy;
use tpsim::presets::{debit_credit_config, debit_credit_workload, DebitCreditStorage, DB_UNIT};
use tpsim::Simulation;

fn run(storage: DebitCreditStorage, force: bool, tps: f64) -> tpsim::SimulationReport {
    let mut config = debit_credit_config(storage, tps);
    // A smaller main-memory buffer lets the scaled-down, short runs reach the
    // steady state (buffer full, victim write-backs) the paper's 2,000-page /
    // 50M-account setting reaches; the qualitative comparisons are unchanged.
    config.buffer.mm_buffer_pages = 400;
    config.warmup_ms = 1_500.0;
    config.measure_ms = 3_500.0;
    if force {
        config.buffer.update_strategy = UpdateStrategy::Force;
    }
    Simulation::new(config, debit_credit_workload(100)).run()
}

#[test]
fn force_is_much_slower_than_noforce_on_disk() {
    let noforce = run(DebitCreditStorage::Disk, false, 100.0);
    let force = run(DebitCreditStorage::Disk, true, 100.0);
    // Paper: ≈45 ms vs ≈75-80 ms — FORCE pays for three additional synchronous
    // disk writes at commit.
    assert!(
        force.response_time.mean > noforce.response_time.mean * 1.4,
        "force {} vs noforce {}",
        force.response_time.mean,
        noforce.response_time.mean
    );
    // FORCE writes more pages to the database disks.
    assert!(force.devices[DB_UNIT].stats.writes > noforce.devices[DB_UNIT].stats.writes);
}

#[test]
fn force_penalty_nearly_vanishes_with_nvem_residence() {
    let noforce = run(DebitCreditStorage::NvemResident, false, 100.0);
    let force = run(DebitCreditStorage::NvemResident, true, 100.0);
    // With all force writes going to NVEM the difference is a few NVEM
    // accesses (≈0.05 ms each): well under 20 %.
    assert!(
        force.response_time.mean < noforce.response_time.mean * 1.2,
        "force {} vs noforce {}",
        force.response_time.mean,
        noforce.response_time.mean
    );
}

#[test]
fn force_with_write_buffer_beats_noforce_on_plain_disks() {
    // Fig. 4.3: "FORCE using a write buffer supports even better response
    // times than NOFORCE without using non-volatile semiconductor memory".
    let force_wb = run(DebitCreditStorage::DiskWithNvemWriteBuffer, true, 100.0);
    let noforce_disk = run(DebitCreditStorage::Disk, false, 100.0);
    assert!(
        force_wb.response_time.mean < noforce_disk.response_time.mean,
        "force+wb {} vs noforce disk {}",
        force_wb.response_time.mean,
        noforce_disk.response_time.mean
    );
}

#[test]
fn noforce_dirty_evictions_disappear_under_force() {
    // Under FORCE there are always clean pages to replace, so buffer misses do
    // not trigger synchronous victim write-backs.
    let noforce = run(DebitCreditStorage::Disk, false, 100.0);
    let force = run(DebitCreditStorage::Disk, true, 100.0);
    assert!(noforce.buffer.dirty_evictions > 0);
    let force_dirty_ratio =
        force.buffer.dirty_evictions as f64 / force.buffer.mm_evictions.max(1) as f64;
    let noforce_dirty_ratio =
        noforce.buffer.dirty_evictions as f64 / noforce.buffer.mm_evictions.max(1) as f64;
    assert!(
        force_dirty_ratio < noforce_dirty_ratio * 0.5,
        "force dirty ratio {force_dirty_ratio} vs noforce {noforce_dirty_ratio}"
    );
}

#[test]
fn write_buffer_halves_disk_response_time_in_both_strategies() {
    for force in [false, true] {
        let disk = run(DebitCreditStorage::Disk, force, 100.0);
        let wb = run(DebitCreditStorage::DiskWithNvCacheWriteBuffer, force, 100.0);
        assert!(
            wb.response_time.mean < disk.response_time.mean * 0.8,
            "force={force}: wb {} vs disk {}",
            wb.response_time.mean,
            disk.response_time.mean
        );
        // The non-volatile caches actually absorb writes.
        assert!(wb.devices[DB_UNIT].stats.absorbed_writes > 0);
    }
}

#[test]
fn higher_arrival_rates_increase_cpu_utilization_and_throughput() {
    let low = run(DebitCreditStorage::Ssd, false, 40.0);
    let high = run(DebitCreditStorage::Ssd, false, 160.0);
    assert!(
        high.cpu_utilization > low.cpu_utilization * 2.0,
        "cpu utilization low {} high {}",
        low.cpu_utilization,
        high.cpu_utilization
    );
    assert!(
        high.throughput_tps > low.throughput_tps * 2.5,
        "throughput low {} high {}",
        low.throughput_tps,
        high.throughput_tps
    );
    // The open system keeps response times roughly stable well below
    // saturation.
    assert!(high.response_time.mean < low.response_time.mean * 3.0);
}
