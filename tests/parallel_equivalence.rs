//! Parallel-kernel equivalence suite: the sharded conservative-lookahead
//! kernel must produce **byte-identical** reports to the sequential engine
//! for every configuration, seed and thread count.
//!
//! This is the oracle that makes the parallel kernel safe to ship: handlers
//! run serially on the coordinator in the sequential kernel's exact global
//! `(time, seq)` order, so any divergence at all — one transaction, one
//! `f64` statistic, one histogram bucket — is a kernel bug, not a tolerance
//! question.  Every assertion here compares complete `{:#?}` report
//! renderings with `assert_eq!` on the strings.
//!
//! The configurations mirror the byte-identity goldens in `paper_shape.rs`
//! (quickstart, fig5.x 8-node, fig6.x crash/replay, fig7.x shared-nothing),
//! plus a randomized tie-heavy sweep that stresses horizon-boundary ordering
//! with odd worker counts and extreme lookahead overrides.

use tpsim::presets::{
    data_sharing_config, debit_credit_config, debit_credit_workload, recovery_config,
    shared_nothing_config, DebitCreditStorage,
};
use tpsim::{Simulation, SimulationConfig, WorkloadParams, WorkloadSchedule};

/// Thread counts exercised against every configuration.  `1` routes through
/// the sequential kernel (the parallel dispatch must be a no-op); the rest
/// use the sharded kernel with as many workers as the node count allows.
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Renders one complete run of `config` with the given kernel thread count.
fn report_string(
    mut config: SimulationConfig,
    clients: u64,
    crash_at_ms: Option<f64>,
    threads: usize,
) -> String {
    config.parallelism.kernel_threads = threads;
    let mut sim = Simulation::new(config, debit_credit_workload(clients));
    if let Some(at_ms) = crash_at_ms {
        sim = sim.simulate_crash_at(at_ms);
    }
    format!("{:#?}", sim.run())
}

/// Asserts that every thread count in [`THREAD_COUNTS`] reproduces the
/// sequential (`kernel_threads == 0`) report byte for byte.
fn assert_thread_count_invariant(
    label: &str,
    config: &SimulationConfig,
    clients: u64,
    crash_at_ms: Option<f64>,
) {
    let sequential = report_string(config.clone(), clients, crash_at_ms, 0);
    for threads in THREAD_COUNTS {
        let parallel = report_string(config.clone(), clients, crash_at_ms, threads);
        assert_eq!(
            sequential, parallel,
            "'{label}' diverged from the sequential oracle at kernel_threads={threads}: \
             the sharded kernel must be byte-identical for every thread count"
        );
    }
}

/// The quickstart configurations: single-node, so every thread count
/// degenerates to one worker — the dispatch itself must not perturb the run.
#[test]
fn quickstart_reports_are_thread_count_invariant() {
    for storage in [DebitCreditStorage::Disk, DebitCreditStorage::NvemResident] {
        let mut config = debit_credit_config(storage, 100.0);
        config.warmup_ms = 1_000.0;
        config.measure_ms = 5_000.0;
        assert_thread_count_invariant(
            &format!("quickstart/{}", storage.label()),
            &config,
            50,
            None,
        );
    }
}

/// The fig5.x 8-node data-sharing point: eight shards, the main scaling
/// configuration (cross-node coherency traffic, shared storage complex).
#[test]
fn fig5x_8_node_report_is_thread_count_invariant() {
    let mut config = data_sharing_config(8, 8.0 * 60.0);
    config.warmup_ms = 1_000.0;
    config.measure_ms = 4_000.0;
    assert_thread_count_invariant("fig5.x/8-node", &config, 100, None);
}

/// The fig7.x 4-node shared-nothing point: function shipping means remote
/// events constantly cross shard boundaries inside the lookahead window.
#[test]
fn fig7x_shared_nothing_report_is_thread_count_invariant() {
    let mut config = shared_nothing_config(4, 4.0 * 60.0);
    config.warmup_ms = 1_000.0;
    config.measure_ms = 4_000.0;
    assert_thread_count_invariant("fig7.x/4-node shared-nothing", &config, 100, None);
}

/// The fig10.x shaped-workload point: a bursty arrival schedule (drawn by
/// inverting the piecewise rate integral) plus hot-spot-skewed page
/// accesses, with the per-node tail sketches merged into the report.  The
/// schedule inversion and the sketch section must be thread-count invariant
/// like every other report field.
#[test]
fn fig10x_shaped_workload_report_is_thread_count_invariant() {
    let mut config = data_sharing_config(2, 2.0 * 60.0);
    config.warmup_ms = 1_000.0;
    config.measure_ms = 4_000.0;
    config.workload = WorkloadParams::skewed(0.9, 0.2);
    config.workload.schedule = WorkloadSchedule::Burst {
        period_ms: 1_000.0,
        burst_fraction: 0.25,
        burst_factor: 4.0,
    };
    assert_thread_count_invariant("fig10.x/shaped-workload", &config, 100, None);
}

/// The fig6.x crash/replay point: checkpoints, a mid-run crash and the
/// restart replay all ride the control shard; the crash teardown path must
/// drain identically under the round protocol.
#[test]
fn fig6x_crash_replay_report_is_thread_count_invariant() {
    let mut config = recovery_config(false, false, 400.0, 120.0);
    config.warmup_ms = 300.0;
    config.measure_ms = 1_500.0;
    assert_thread_count_invariant("fig6.x/crash-replay", &config, 200, Some(1_600.0));
}

/// Randomized tie-heavy sweep: short, hot multi-node runs with varied seeds,
/// odd worker counts (uneven shard→worker folding) and extreme lookahead
/// overrides.  High arrival rates against short windows pile events onto
/// identical timestamps (group-commit flushes, zero-delay wakeups), so the
/// `(time, seq)` tie-break is exercised at every horizon boundary; the
/// lookahead extremes force both many tiny rounds and one giant round.
#[test]
fn randomized_tie_heavy_configs_match_sequential_oracle() {
    // Deterministic "random" parameter draws: a tiny LCG, so the sweep is
    // reproducible without pulling a PRNG into the dev-dependencies.
    let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    for case in 0..6u32 {
        let nodes = [2, 3, 5, 8][next() as usize % 4];
        let per_node_tps = 120.0 + (next() % 200) as f64;
        let threads = [2, 3, 5, 7][next() as usize % 4];
        // 0.0 derives the lookahead from the modelled delays; the extremes
        // override it to "every event is its own round" and "one round for
        // the whole run" — all three must agree bit for bit.
        let lookahead_ms = [0.0, 0.05, 1.0e9][next() as usize % 3];
        let mut config = data_sharing_config(nodes, nodes as f64 * per_node_tps);
        config.warmup_ms = 200.0;
        config.measure_ms = 800.0;
        config.seed = next();
        config.parallelism.lookahead_ms = lookahead_ms;

        let sequential = report_string(config.clone(), 80, None, 0);
        let parallel = report_string(config.clone(), 80, None, threads);
        assert_eq!(
            sequential, parallel,
            "randomized case {case} (nodes={nodes}, tps/node={per_node_tps}, \
             threads={threads}, lookahead={lookahead_ms}ms, seed={}) diverged \
             from the sequential oracle",
            config.seed
        );
    }
}
