//! Paper-shape regression suite: qualitative golden assertions for the
//! headline orderings of the paper's evaluation, so a refactor cannot
//! silently invert a figure.
//!
//! The shape tests are `#[ignore]`d because each one runs several complete
//! simulations; CI executes them in release mode via
//! `cargo test --release -- --ignored`.  Run them locally with
//!
//! ```bash
//! cargo test --release --test paper_shape -- --ignored
//! ```
//!
//! The non-ignored tests are the cheap determinism guarantees of the
//! multi-node (data-sharing) dimension.

use tpsim::presets::{
    self, caching_config, data_sharing_config, debit_credit_config, debit_credit_workload,
    log_allocation_config, recovery_config, shared_nothing_config, DebitCreditStorage, LogVariant,
    SecondLevel, LOG_UNIT,
};
use tpsim::{
    LogAllocation, Simulation, SimulationConfig, SimulationReport, WorkloadParams, WorkloadSchedule,
};
use tpsim_bench::runner::{
    data_sharing_point, recovery_point, run_recovery_crash, run_sweep, shared_nothing_point,
    Family, RunSettings,
};

/// Shortens a configuration to test-friendly simulated durations and runs it
/// against the scaled-down Debit-Credit database.
fn run_debit_credit_quickly(mut config: SimulationConfig) -> SimulationReport {
    config.warmup_ms = 1_000.0;
    config.measure_ms = 6_000.0;
    Simulation::new(config, debit_credit_workload(100)).run()
}

// ---------------------------------------------------------------------------
// Determinism of the multi-node dimension (cheap, always run)
// ---------------------------------------------------------------------------

#[test]
fn multi_node_engine_is_deterministic_for_fixed_seed() {
    let make = || {
        let mut c = data_sharing_config(3, 120.0);
        c.warmup_ms = 300.0;
        c.measure_ms = 1_500.0;
        c
    };
    let a = Simulation::new(make(), debit_credit_workload(200)).run();
    let b = Simulation::new(make(), debit_credit_workload(200)).run();
    assert_eq!(a, b, "same seed must reproduce the full multi-node report");
    assert_eq!(a.nodes.len(), 3);
    assert!(a.completed > 0);
}

#[test]
fn multi_node_sweep_is_byte_identical_in_parallel_and_serial() {
    // PR 1 guaranteed parallel == serial for single-node sweeps; the node
    // count is one more sweep dimension and must preserve the guarantee.
    let mk_points = || {
        [1usize, 2, 4, 8]
            .iter()
            .map(|&n| {
                (
                    format!("{n}-node"),
                    n as f64,
                    data_sharing_point(n, 50.0),
                    Family::DebitCredit,
                )
            })
            .collect::<Vec<_>>()
    };
    let mut settings = RunSettings::quick();
    settings.parallel = false;
    let serial = run_sweep(&settings, mk_points());
    settings.parallel = true;
    settings.threads = 4;
    let parallel = run_sweep(&settings, mk_points());
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(parallel.iter()) {
        assert_eq!(s.series, p.series);
        assert_eq!(s.report, p.report, "series {} diverged", s.series);
    }
}

// ---------------------------------------------------------------------------
// Determinism of the shared-nothing dimension (cheap, always run)
// ---------------------------------------------------------------------------

#[test]
fn shared_nothing_engine_is_deterministic_for_fixed_seed() {
    let make = || {
        let mut c = shared_nothing_config(3, 120.0);
        c.warmup_ms = 300.0;
        c.measure_ms = 1_500.0;
        c
    };
    let a = Simulation::new(make(), debit_credit_workload(200)).run();
    let b = Simulation::new(make(), debit_credit_workload(200)).run();
    assert_eq!(a, b, "same seed must reproduce the shared-nothing report");
    assert_eq!(a.nodes.len(), 3);
    assert!(a.completed > 0);
    assert!(
        a.shipping.as_ref().is_some_and(|s| s.remote_calls > 0),
        "a 3-node shared-nothing run must ship calls"
    );
}

#[test]
fn shared_nothing_sweep_is_byte_identical_in_parallel_and_serial() {
    // The architecture is one more sweep dimension and must preserve the
    // parallel == serial guarantee of PRs 1–3.
    let mk_points = || {
        [1usize, 2, 4, 8]
            .iter()
            .map(|&n| {
                (
                    format!("{n}-node"),
                    n as f64,
                    shared_nothing_point(n, 50.0),
                    Family::DebitCredit,
                )
            })
            .collect::<Vec<_>>()
    };
    let mut settings = RunSettings::quick();
    settings.parallel = false;
    let serial = run_sweep(&settings, mk_points());
    settings.parallel = true;
    settings.threads = 4;
    let parallel = run_sweep(&settings, mk_points());
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(parallel.iter()) {
        assert_eq!(s.series, p.series);
        assert_eq!(s.report, p.report, "series {} diverged", s.series);
    }
}

// ---------------------------------------------------------------------------
// Determinism of the workload-engine dimension (cheap, always run)
// ---------------------------------------------------------------------------

/// The fig10.x burst + hot-spot configuration used by the cheap determinism
/// and golden tests below.
fn fig10x_config() -> SimulationConfig {
    let mut c = data_sharing_config(2, 2.0 * 60.0);
    c.workload = WorkloadParams::skewed(0.9, 0.2);
    c.workload.schedule = WorkloadSchedule::Burst {
        period_ms: 1_000.0,
        burst_fraction: 0.25,
        burst_factor: 4.0,
    };
    c
}

#[test]
fn shaped_workload_engine_is_deterministic_for_fixed_seed() {
    // Satellite guarantee of the workload-engine PR: a time-varying arrival
    // schedule plus hot-spot skew must reproduce the complete report —
    // including the sketch-derived tail section — byte for byte.
    let make = || {
        let mut c = fig10x_config();
        c.warmup_ms = 300.0;
        c.measure_ms = 1_500.0;
        c
    };
    let a = Simulation::new(make(), debit_credit_workload(200)).run();
    let b = Simulation::new(make(), debit_credit_workload(200)).run();
    assert_eq!(a, b, "same seed must reproduce the shaped-workload report");
    let tail = a.tail.expect("shaped runs carry the tail section");
    assert!(tail.count > 0);
    assert!(tail.p50 <= tail.p95 && tail.p95 <= tail.p99);
    assert!(tail.p99 <= tail.p999 && tail.p999 <= tail.max);
}

#[test]
fn unshaped_runs_omit_the_tail_section() {
    // The inverse gate: a default (constant-rate, unskewed) configuration
    // must not carry the tail section, and its `{:#?}` rendering must not
    // mention it — that is what keeps every pre-existing golden byte-exact.
    let mut c = data_sharing_config(2, 120.0);
    c.warmup_ms = 300.0;
    c.measure_ms = 1_500.0;
    let report = Simulation::new(c, debit_credit_workload(200)).run();
    assert!(report.tail.is_none());
    assert!(!format!("{report:#?}").contains("tail"));
}

// ---------------------------------------------------------------------------
// Determinism of the recovery dimension (cheap, always run)
// ---------------------------------------------------------------------------

#[test]
fn crash_replay_is_deterministic_for_fixed_seed_and_crash_point() {
    // Satellite guarantee of the recovery PR: the same seed and the same
    // crash point must reproduce the complete report byte for byte,
    // including the restart section.
    let run = || {
        let mut c = recovery_config(false, false, 400.0, 120.0);
        c.warmup_ms = 300.0;
        c.measure_ms = 1_500.0;
        Simulation::new(c, debit_credit_workload(200))
            .simulate_crash_at(1_600.0)
            .run()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "crash replay diverged for identical inputs");
    let restart = a
        .recovery
        .as_ref()
        .and_then(|r| r.restart.as_ref())
        .expect("restart section present");
    assert!(restart.restart_ms > 0.0);
}

#[test]
fn recovery_sweep_is_byte_identical_in_parallel_and_serial() {
    // The crash-and-restart family must preserve the parallel == serial
    // sweep guarantee like every other family.
    let mk_points = || {
        [(false, false), (false, true), (true, false), (true, true)]
            .iter()
            .enumerate()
            .map(|(i, &(force, nvem_log))| {
                (
                    format!("variant-{i}"),
                    i as f64,
                    recovery_point(force, nvem_log, 500.0, 100.0),
                    Family::RecoveryCrash,
                )
            })
            .collect::<Vec<_>>()
    };
    let mut settings = RunSettings::quick();
    settings.parallel = false;
    let serial = run_sweep(&settings, mk_points());
    settings.parallel = true;
    settings.threads = 4;
    let parallel = run_sweep(&settings, mk_points());
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(parallel.iter()) {
        assert_eq!(s.report, p.report, "series {} diverged", s.series);
        assert!(s
            .report
            .recovery
            .as_ref()
            .is_some_and(|r| r.restart.is_some()));
    }
}

// ---------------------------------------------------------------------------
// Byte-identity goldens (cheap, always run)
// ---------------------------------------------------------------------------
//
// The hot-path kernel work (calendar event queue, engine arenas) must not
// change simulation output *at all*: these tests render complete reports of
// three representative configurations with `{:#?}` and compare them byte for
// byte against goldens captured before the refactor.  Regenerate with
//
// ```bash
// UPDATE_GOLDENS=1 cargo test --release --test paper_shape golden_
// ```
//
// only when an intentional model change is made (and say so in the PR).

fn assert_matches_golden(name: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(format!("{name}.txt"));
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert_eq!(
        expected, actual,
        "report of '{name}' diverged from the pre-refactor golden \
         (tests/goldens/{name}.txt); the kernel refactor must be output-preserving"
    );
}

/// The quickstart example's two configurations (Debit-Credit at 100 TPS,
/// disk-based vs NVEM-resident).
#[test]
fn golden_quickstart_reports_are_byte_identical() {
    let mut out = String::new();
    for storage in [DebitCreditStorage::Disk, DebitCreditStorage::NvemResident] {
        let mut config = debit_credit_config(storage, 100.0);
        config.warmup_ms = 1_000.0;
        config.measure_ms = 5_000.0;
        let report = Simulation::new(config, debit_credit_workload(50)).run();
        out.push_str(&format!("== {} ==\n{report:#?}\n", storage.label()));
    }
    assert_matches_golden("quickstart", &out);
}

/// One 8-node fig5.x point: eight computing modules sharing the storage
/// complex at 60 TPS offered per node.
#[test]
fn golden_fig5x_8_node_report_is_byte_identical() {
    let mut config = data_sharing_config(8, 8.0 * 60.0);
    config.warmup_ms = 1_000.0;
    config.measure_ms = 4_000.0;
    let report = Simulation::new(config, debit_credit_workload(100)).run();
    assert_matches_golden("fig5x_8_node", &format!("{report:#?}\n"));
}

/// One 4-node fig7.x shared-nothing point: four computing modules with a
/// hash-declustered database, 60 TPS offered per node, including the
/// function-shipping section.
#[test]
fn golden_fig7x_shared_nothing_4_node_report_is_byte_identical() {
    let mut config = shared_nothing_config(4, 4.0 * 60.0);
    config.warmup_ms = 1_000.0;
    config.measure_ms = 4_000.0;
    let report = Simulation::new(config, debit_credit_workload(100)).run();
    assert_matches_golden("fig7x_shared_nothing_4_node", &format!("{report:#?}\n"));
}

/// One fig6.x point: NOFORCE with a disk-resident log, checkpoints every
/// 400 ms and a crash at 1600 ms, including the restart section.
#[test]
fn golden_fig6x_crash_replay_report_is_byte_identical() {
    let mut config = recovery_config(false, false, 400.0, 120.0);
    config.warmup_ms = 300.0;
    config.measure_ms = 1_500.0;
    let report = Simulation::new(config, debit_credit_workload(200))
        .simulate_crash_at(1_600.0)
        .run();
    assert_matches_golden("fig6x_crash_replay", &format!("{report:#?}\n"));
}

/// One fig10.x point: two nodes under the burst schedule with Zipf-skewed
/// hot-spot accesses, including the sketch-derived tail-latency section.
#[test]
fn golden_fig10x_shaped_workload_report_is_byte_identical() {
    let mut config = fig10x_config();
    config.warmup_ms = 1_000.0;
    config.measure_ms = 4_000.0;
    let report = Simulation::new(config, debit_credit_workload(100)).run();
    assert_matches_golden("fig10x_shaped_workload", &format!("{report:#?}\n"));
}

// ---------------------------------------------------------------------------
// Fig. 4.1 — log allocation ordering (slow, release CI job)
// ---------------------------------------------------------------------------

#[test]
#[ignore = "paper-shape suite: run with --release -- --ignored"]
fn fig4_1_log_allocation_throughput_ordering() {
    // At 300 TPS a single log disk (~5 ms per log write) saturates, so the
    // four log allocations must order as in Fig. 4.1:
    //     NVEM log >= NVEM-write-buffer log >= disk-cache log >= disk log.
    let rate = 300.0;
    let nvem = run_debit_credit_quickly(log_allocation_config(LogVariant::Nvem, rate));
    let write_buffer = {
        let mut c = log_allocation_config(LogVariant::SingleDisk, rate);
        c.log_allocation = LogAllocation::DiskUnitViaNvemWriteBuffer(LOG_UNIT);
        c.buffer.nvem_write_buffer_pages = 500;
        run_debit_credit_quickly(c)
    };
    let disk_cache =
        run_debit_credit_quickly(log_allocation_config(LogVariant::SingleDiskNvCache, rate));
    let disk = run_debit_credit_quickly(log_allocation_config(LogVariant::SingleDisk, rate));

    // The three fast variants all avoid the synchronous disk write and may be
    // near-identical, so allow 2% noise on the >= comparisons between them;
    // the gap to the saturated plain-disk log must be large.
    let t = |r: &SimulationReport| r.throughput_tps;
    assert!(
        t(&nvem) >= 0.98 * t(&write_buffer),
        "NVEM log {} vs write-buffer log {}",
        t(&nvem),
        t(&write_buffer)
    );
    assert!(
        t(&write_buffer) >= 0.98 * t(&disk_cache),
        "write-buffer log {} vs disk-cache log {}",
        t(&write_buffer),
        t(&disk_cache)
    );
    assert!(
        t(&disk_cache) >= 0.98 * t(&disk),
        "disk-cache log {} vs disk log {}",
        t(&disk_cache),
        t(&disk)
    );
    assert!(
        t(&nvem) > 1.2 * t(&disk),
        "NVEM log {} should clearly beat the saturated disk log {}",
        t(&nvem),
        t(&disk)
    );
    assert!(
        disk.devices[LOG_UNIT].disk_utilization > 0.9,
        "the plain disk log should be saturated, got {}",
        disk.devices[LOG_UNIT].disk_utilization
    );
}

// ---------------------------------------------------------------------------
// Fig. 4.3 — NOFORCE vs FORCE (slow, release CI job)
// ---------------------------------------------------------------------------

#[test]
#[ignore = "paper-shape suite: run with --release -- --ignored"]
fn fig4_3_noforce_dominates_force_on_disk_resident_databases() {
    // FORCE writes every modified page synchronously at commit; on a
    // disk-resident database that inflates both the commit path and the disk
    // write load, so NOFORCE must deliver at least the throughput of FORCE
    // and strictly better response times (Fig. 4.3).
    let rate = 200.0;
    let noforce = run_debit_credit_quickly(debit_credit_config(DebitCreditStorage::Disk, rate));
    let force = {
        let mut c = debit_credit_config(DebitCreditStorage::Disk, rate);
        c.buffer.update_strategy = bufmgr::UpdateStrategy::Force;
        run_debit_credit_quickly(c)
    };
    assert!(force.buffer.forced_pages > 0, "FORCE never forced a page");
    assert!(
        noforce.throughput_tps >= 0.98 * force.throughput_tps,
        "NOFORCE {} vs FORCE {} TPS",
        noforce.throughput_tps,
        force.throughput_tps
    );
    assert!(
        noforce.response_time.mean < force.response_time.mean,
        "NOFORCE {} ms vs FORCE {} ms",
        noforce.response_time.mean,
        force.response_time.mean
    );
}

// ---------------------------------------------------------------------------
// Table 4.2 — second-level cache hit ratios (slow, release CI job)
// ---------------------------------------------------------------------------

#[test]
#[ignore = "paper-shape suite: run with --release -- --ignored"]
fn table4_2_second_level_cache_raises_total_hit_ratio() {
    // With a small main-memory buffer, adding a second-level NVEM cache must
    // raise the combined hit ratio above main-memory-only caching
    // (Table 4.2), without lowering the main-memory hit ratio's contribution
    // to it.
    let rate = 200.0;
    let mm_pages = 250;
    let mm_only =
        run_debit_credit_quickly(caching_config(mm_pages, SecondLevel::None, false, rate));
    let with_nvem = run_debit_credit_quickly(caching_config(
        mm_pages,
        SecondLevel::NvemCache(2_000),
        false,
        rate,
    ));
    assert!(
        with_nvem.nvem_hit_ratio() > 0.0,
        "the second-level cache never hit"
    );
    let combined_mm_only = mm_only.buffer.combined_hit_ratio();
    let combined_with_nvem = with_nvem.buffer.combined_hit_ratio();
    assert!(
        combined_with_nvem > combined_mm_only + 0.01,
        "combined hit ratio {} (with NVEM cache) vs {} (MM only)",
        combined_with_nvem,
        combined_mm_only
    );
}

// ---------------------------------------------------------------------------
// Fig. 6.x — restart time vs throughput (slow, release CI job)
// ---------------------------------------------------------------------------

#[test]
#[ignore = "paper-shape suite: run with --release -- --ignored"]
fn fig6_x_nvem_log_noforce_restarts_faster_at_equal_throughput() {
    // The acceptance shape of the recovery PR: at a moderate rate (the
    // eight-disk log unit is far from saturation) the NOFORCE variants reach
    // the same throughput whether the log lives on disk or in NVEM, but the
    // NVEM-resident log reads its redo tail back at NVEM speed, so its
    // restart is clearly shorter.  FORCE trades the opposite way: a slower
    // commit path, but restart degenerates to a log scan.
    let mut settings = RunSettings::standard();
    settings.debit_credit_scale = 100;
    let rate = 150.0;
    let disk = run_recovery_crash(&settings, recovery_point(false, false, 0.0, rate));
    let nvem = run_recovery_crash(&settings, recovery_point(false, true, 0.0, rate));
    let force = run_recovery_crash(&settings, recovery_point(true, false, 0.0, rate));

    // Equal throughput: the log allocation is off the critical path.
    assert!(
        (disk.throughput_tps - nvem.throughput_tps).abs() < 0.1 * disk.throughput_tps,
        "throughput should be equal: disk log {} TPS vs NVEM log {} TPS",
        disk.throughput_tps,
        nvem.throughput_tps
    );
    // ... but the NVEM-resident log restarts measurably faster.
    assert!(
        nvem.restart_ms() < 0.9 * disk.restart_ms(),
        "NVEM log restart {} ms should clearly beat disk log restart {} ms",
        nvem.restart_ms(),
        disk.restart_ms()
    );
    // FORCE: no page redo at all, restart is a log scan.
    let force_restart = force
        .recovery
        .as_ref()
        .and_then(|r| r.restart.as_ref())
        .expect("restart section");
    assert_eq!(force_restart.dirty_pages_at_crash, 0);
    assert!(
        force.restart_ms() < disk.restart_ms(),
        "FORCE restart {} ms vs NOFORCE restart {} ms",
        force.restart_ms(),
        disk.restart_ms()
    );
    // And the steady-state cost of that trade-off is visible too.
    assert!(
        force.response_time.mean > disk.response_time.mean,
        "FORCE response {} ms should exceed NOFORCE response {} ms",
        force.response_time.mean,
        disk.response_time.mean
    );
}

// ---------------------------------------------------------------------------
// Fig. 5.x — multi-node scaling shape (slow, release CI job)
// ---------------------------------------------------------------------------

#[test]
#[ignore = "paper-shape suite: run with --release -- --ignored"]
fn fig5_x_multi_node_throughput_scales_sublinearly() {
    // Same per-node offered rate at 1/2/4/8 nodes; the shared single log
    // disk and the global lock service keep the speedup below linear once
    // the aggregate load crosses the log disk's ceiling.
    let per_node_rate = 60.0;
    let run = |n: usize| {
        let mut c = data_sharing_config(n, per_node_rate * n as f64);
        c.warmup_ms = 1_000.0;
        c.measure_ms = 6_000.0;
        Simulation::new(c, debit_credit_workload(100)).run()
    };
    let one = run(1);
    let four = run(4);
    let eight = run(8);
    assert!(one.completed > 0 && four.completed > 0 && eight.completed > 0);
    // 1 node at 60 TPS is uncongested; 8 nodes offer 480 TPS against a
    // ~200 TPS log disk, so the speedup must stay clearly below 8x.
    let speedup = eight.throughput_tps / one.throughput_tps;
    assert!(
        speedup < 7.0,
        "8-node speedup {speedup} should be sub-linear (shared log + lock messages)"
    );
    // The shared log disk is the visible bottleneck at 8 nodes.
    assert!(
        eight.devices[presets::LOG_UNIT].disk_utilization > 0.9,
        "8-node log disk utilization {}",
        eight.devices[presets::LOG_UNIT].disk_utilization
    );
    // Scaling from 4 to 8 nodes must not help much once the log saturates.
    assert!(
        eight.throughput_tps < 1.5 * four.throughput_tps,
        "8 nodes {} vs 4 nodes {} TPS",
        eight.throughput_tps,
        four.throughput_tps
    );
    // And the data-sharing machinery is actually exercised.
    assert!(eight.remote_lock_requests() > 0);
    assert!(eight.invalidations() > 0);
}

// ---------------------------------------------------------------------------
// Fig. 7.x — data-sharing / shared-nothing crossover (slow, release CI job)
// ---------------------------------------------------------------------------

#[test]
#[ignore = "paper-shape suite: run with --release -- --ignored"]
fn fig7_x_architectures_cross_over_as_remote_fraction_grows() {
    // The acceptance shape of the shared-nothing PR: on the same workload
    // family (60 TPS offered per node), data sharing is at least competitive
    // at 1–2 nodes (no function-shipping overhead, log far from saturation)
    // but caps at its shared log disk as nodes are added, while shared
    // nothing pays a remote-access fraction growing like (n-1)/n yet scales
    // its partitioned log — so the throughput ratio crosses 1 somewhere
    // between 2 and 8 nodes.
    let run = |n: usize, shared_nothing: bool| {
        let mut c = if shared_nothing {
            shared_nothing_config(n, 60.0 * n as f64)
        } else {
            data_sharing_config(n, 60.0 * n as f64)
        };
        c.warmup_ms = 1_000.0;
        c.measure_ms = 6_000.0;
        Simulation::new(c, debit_credit_workload(100)).run()
    };
    let ratio = |n: usize| {
        let sharing = run(n, false);
        let nothing = run(n, true);
        (nothing.throughput_tps / sharing.throughput_tps, nothing)
    };
    let (r2, nothing2) = ratio(2);
    let (r8, nothing8) = ratio(8);
    // At 2 nodes the shared log is below its ceiling: shipping overhead
    // keeps shared nothing at or below data sharing.
    assert!(
        r2 < 1.1,
        "2-node shared-nothing/data-sharing ratio {r2} should not exceed ~1"
    );
    // At 8 nodes data sharing is capped by the shared log disk while the
    // partitioned log scales: shared nothing must clearly win.
    assert!(
        r8 > 1.5,
        "8-node shared-nothing/data-sharing ratio {r8} should show the crossover"
    );
    assert!(r8 > r2, "the ratio must grow with the node count");
    // The remote-access fraction grows like (n-1)/n ...
    let frac2 = nothing2.remote_access_fraction();
    let frac8 = nothing8.remote_access_fraction();
    assert!(
        (0.35..0.65).contains(&frac2),
        "2-node remote fraction {frac2} should be ≈ 0.5"
    );
    assert!(
        (0.75..0.95).contains(&frac8),
        "8-node remote fraction {frac8} should be ≈ 0.875"
    );
    // ... and shared nothing never needs coherence or global-lock traffic.
    assert_eq!(nothing8.invalidations(), 0);
    assert_eq!(nothing8.global_locks.messages, 0);
}
