//! Integration tests for multi-level caching (§4.5, Fig. 4.4/4.5, Table 4.2):
//! the relative effectiveness of volatile disk caches, non-volatile disk
//! caches and a second-level NVEM buffer, and the exclusive-caching property
//! of NVEM under NOFORCE.

use tpsim::presets::{caching_config, debit_credit_workload, SecondLevel, DB_UNIT};
use tpsim::Simulation;

fn run(mm_pages: usize, second_level: SecondLevel, force: bool) -> tpsim::SimulationReport {
    // 400 TPS (half the CPU capacity) on a strongly scaled-down database keeps
    // the runs short while still driving the buffers into steady state so the
    // multi-level caching effects of the paper show up.
    let mut config = caching_config(mm_pages, second_level, force, 400.0);
    config.warmup_ms = 1_000.0;
    config.measure_ms = 4_000.0;
    Simulation::new(config, debit_credit_workload(1_000)).run()
}

#[test]
fn volatile_disk_cache_stops_hitting_once_mm_buffer_reaches_its_size() {
    // Paper, Table 4.2a: with a 1,000-page volatile disk cache the read hits
    // drop to (almost) zero as soon as the main-memory buffer reaches 1,000
    // pages, because the cache then only holds a subset of the MM buffer.
    let small_mm = run(200, SecondLevel::VolatileDiskCache(1_000), false);
    let large_mm = run(1_000, SecondLevel::VolatileDiskCache(1_000), false);
    let small_hits = small_mm.disk_cache_hit_ratio(DB_UNIT);
    let large_hits = large_mm.disk_cache_hit_ratio(DB_UNIT);
    assert!(
        small_hits > 0.02,
        "small MM buffer should produce disk-cache hits, got {small_hits}"
    );
    assert!(
        large_hits < small_hits * 0.5,
        "large MM buffer should collapse disk-cache hits: {large_hits} vs {small_hits}"
    );
}

#[test]
fn nonvolatile_disk_cache_beats_volatile_under_noforce() {
    // NOFORCE produces many write misses; only the non-volatile cache
    // allocates on write misses, so it keeps producing read hits.
    let volatile = run(500, SecondLevel::VolatileDiskCache(1_000), false);
    let nonvolatile = run(500, SecondLevel::NonVolatileDiskCache(1_000), false);
    assert!(
        nonvolatile.disk_cache_hit_ratio(DB_UNIT) >= volatile.disk_cache_hit_ratio(DB_UNIT),
        "nv {} vs vol {}",
        nonvolatile.disk_cache_hit_ratio(DB_UNIT),
        volatile.disk_cache_hit_ratio(DB_UNIT)
    );
    assert!(
        nonvolatile.response_time.mean < volatile.response_time.mean,
        "nv {} vs vol {}",
        nonvolatile.response_time.mean,
        volatile.response_time.mean
    );
}

#[test]
fn nvem_cache_gives_best_response_times_of_all_second_level_caches() {
    let volatile = run(500, SecondLevel::VolatileDiskCache(1_000), false);
    let nonvolatile = run(500, SecondLevel::NonVolatileDiskCache(1_000), false);
    let nvem = run(500, SecondLevel::NvemCache(1_000), false);
    assert!(nvem.response_time.mean < nonvolatile.response_time.mean);
    assert!(nvem.response_time.mean < volatile.response_time.mean);
    // The NVEM cache actually produces second-level hits.
    assert!(nvem.nvem_hit_ratio() > 0.0);
}

#[test]
fn noforce_nvem_caching_is_equivalent_to_a_larger_mm_buffer() {
    // Paper: "the combined hit ratio for the main memory and NVEM caches was
    // the same as for a main memory buffer of the same aggregate size".
    let combined = run(500, SecondLevel::NvemCache(1_000), false);
    let aggregate = run(1_500, SecondLevel::None, false);
    let combined_ratio = combined.buffer.combined_hit_ratio();
    let aggregate_ratio = aggregate.mm_hit_ratio();
    assert!(
        (combined_ratio - aggregate_ratio).abs() < 0.05,
        "combined {combined_ratio} vs aggregate {aggregate_ratio}"
    );
}

#[test]
fn write_buffer_alone_accounts_for_most_of_the_improvement() {
    // Paper: "the use of a write buffer alone (no read hits) accounted already
    // for the largest improvements compared to the disk-based configuration".
    let disk_only = run(500, SecondLevel::None, false);
    let write_buffer = run(500, SecondLevel::DiskCacheWriteBufferOnly, false);
    let nv_cache = run(500, SecondLevel::NonVolatileDiskCache(1_000), false);
    let total_gain = disk_only.response_time.mean - nv_cache.response_time.mean;
    let wb_gain = disk_only.response_time.mean - write_buffer.response_time.mean;
    assert!(total_gain > 0.0);
    assert!(
        wb_gain > total_gain * 0.6,
        "write-buffer gain {wb_gain} vs total gain {total_gain}"
    );
}

#[test]
fn second_level_hit_ratios_shrink_as_the_mm_buffer_grows() {
    let small = run(200, SecondLevel::NvemCache(1_000), false);
    let large = run(2_000, SecondLevel::NvemCache(1_000), false);
    assert!(small.nvem_hit_ratio() > large.nvem_hit_ratio());
    assert!(large.mm_hit_ratio() > small.mm_hit_ratio());
}

#[test]
fn force_reduces_second_level_cache_effectiveness() {
    // Table 4.2b: FORCE floods the second-level caches with written pages and
    // (for NVEM) causes double caching, lowering the additional hit ratios.
    let noforce = run(500, SecondLevel::NvemCache(1_000), false);
    let force = run(500, SecondLevel::NvemCache(1_000), true);
    assert!(
        force.nvem_hit_ratio() <= noforce.nvem_hit_ratio() + 0.01,
        "force {} vs noforce {}",
        force.nvem_hit_ratio(),
        noforce.nvem_hit_ratio()
    );
}

#[test]
fn larger_mm_buffers_improve_response_time_with_diminishing_returns() {
    let r200 = run(200, SecondLevel::None, false);
    let r2000 = run(2_000, SecondLevel::None, false);
    let r5000 = run(5_000, SecondLevel::None, false);
    assert!(r2000.response_time.mean < r200.response_time.mean);
    let first_gain = r200.response_time.mean - r2000.response_time.mean;
    let second_gain = r2000.response_time.mean - r5000.response_time.mean;
    assert!(
        second_gain < first_gain,
        "expected diminishing returns: {first_gain} then {second_gain}"
    );
}
