//! Quickstart: simulate the Debit-Credit workload on two storage
//! architectures and compare response times.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use tpsim::presets::{debit_credit_config, debit_credit_workload, DebitCreditStorage};
use tpsim::Simulation;

fn main() {
    println!("TPSIM quickstart: Debit-Credit at 100 TPS, disk-based vs. NVEM-resident\n");

    for storage in [DebitCreditStorage::Disk, DebitCreditStorage::NvemResident] {
        // Configure the run: 100 transactions per second, a scaled-down
        // Debit-Credit database (scale factor 50) so the example finishes in
        // a couple of seconds.
        let mut config = debit_credit_config(storage, 100.0);
        config.warmup_ms = 1_000.0;
        config.measure_ms = 5_000.0;
        let workload = debit_credit_workload(50);

        let report = Simulation::new(config, workload).run();

        println!("== {} ==", storage.label());
        println!("  completed transactions : {}", report.completed);
        println!(
            "  throughput             : {:.1} TPS",
            report.throughput_tps
        );
        println!(
            "  mean response time     : {:.2} ms (p95 {:.2} ms)",
            report.response_time.mean, report.response_time.p95
        );
        println!(
            "  CPU utilization        : {:.1} %",
            report.cpu_utilization * 100.0
        );
        println!(
            "  main-memory hit ratio  : {:.1} %",
            report.mm_hit_ratio() * 100.0
        );
        for unit in &report.devices {
            println!(
                "  {:<22} : {:.1} % disk busy, {:.2} ms avg queue wait",
                unit.name,
                unit.disk_utilization * 100.0,
                unit.avg_disk_wait
            );
        }
        println!();
    }

    println!("The NVEM-resident configuration should be several times faster than the");
    println!("disk-based one — the same qualitative result as Fig. 4.2 of the paper.");
}
