//! Architecture comparison: the same multi-node Debit-Credit workload on
//! data sharing (shared storage, global locks, commit-time invalidation) and
//! shared nothing (partitioned database and log, function-shipped remote
//! accesses, node-local locks, two-phase commit messages).
//!
//! ```bash
//! cargo run --release --example architecture_compare
//! ```

use tpsim::presets::{data_sharing_config, debit_credit_workload, shared_nothing_config, LOG_UNIT};
use tpsim::{Simulation, SimulationConfig};

fn run(label: &str, mut config: SimulationConfig) {
    config.warmup_ms = 1_000.0;
    config.measure_ms = 5_000.0;
    let report = Simulation::new(config, debit_credit_workload(100)).run();

    println!("== {label} ==");
    println!(
        "  throughput             : {:.1} TPS",
        report.throughput_tps
    );
    println!(
        "  mean response time     : {:.2} ms",
        report.response_time.mean
    );
    println!(
        "  log-device utilization : {:.1} %",
        report.devices[LOG_UNIT].disk_utilization * 100.0
    );
    match &report.shipping {
        Some(shipping) => {
            println!(
                "  remote-access fraction : {:.1} % ({} calls shipped)",
                shipping.remote_access_fraction() * 100.0,
                shipping.remote_calls
            );
            println!(
                "  messages               : {} ({} commit exchanges)",
                shipping.messages, shipping.commit_exchanges
            );
        }
        None => {
            println!(
                "  remote lock requests   : {} ({} messages)",
                report.remote_lock_requests(),
                report.global_locks.messages
            );
            println!("  invalidations          : {}", report.invalidations());
        }
    }
    println!();
}

fn main() {
    let nodes = 4;
    let rate = 60.0 * nodes as f64;
    println!(
        "TPSIM architecture comparison: {nodes} computing modules, {rate:.0} TPS offered total\n"
    );
    run("data sharing", data_sharing_config(nodes, rate));
    run("shared nothing", shared_nothing_config(nodes, rate));
    println!("Data sharing queues all commits at one shared log disk (its ceiling is");
    println!("~200 TPS), while shared nothing partitions the log but pays messages and");
    println!("remote CPU for every function-shipped access — the trade-off behind the");
    println!("fig7.x crossover (see docs/ARCHITECTURE.md and `experiments -- fig7.x`).");
}
