//! Lock-contention study (the Fig. 4.8 experiment): page- versus object-level
//! locking for three storage allocations of a high-contention, update-only
//! workload.
//!
//! ```bash
//! cargo run --release --example lock_contention [TPS]
//! ```

use lockmgr::CcMode;
use tpsim::presets::{contention_config, contention_workload, ContentionAllocation};
use tpsim::Simulation;

fn run(allocation: ContentionAllocation, granularity: CcMode, tps: f64) -> tpsim::SimulationReport {
    let mut config = contention_config(allocation, granularity, tps);
    config.warmup_ms = 1_000.0;
    config.measure_ms = 6_000.0;
    Simulation::new(config, contention_workload()).run()
}

fn main() {
    let tps: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(150.0);

    println!("Lock contention at {tps} TPS: one update-only transaction type,");
    println!("80% of accesses on a small 10,000-object partition.\n");
    println!(
        "{:<42} {:>10} {:>12} {:>10} {:>10} {:>8}",
        "allocation / granularity", "thru", "resp [ms]", "conflicts", "deadlocks", "cpu"
    );

    for allocation in ContentionAllocation::ALL {
        for granularity in [CcMode::Page, CcMode::Object] {
            let label = format!(
                "{} / {}",
                allocation.label(),
                match granularity {
                    CcMode::Page => "page locks",
                    CcMode::Object => "object locks",
                    CcMode::None => "no locks",
                }
            );
            let r = run(allocation, granularity, tps);
            println!(
                "{:<42} {:>10.1} {:>12.1} {:>9.2}% {:>10} {:>7.0}%",
                label,
                r.throughput_tps,
                r.response_time.mean,
                r.lock_conflict_ratio() * 100.0,
                r.locks.deadlocks,
                r.cpu_utilization * 100.0
            );
        }
    }

    println!();
    println!("Expected shape (paper §4.7): with page-level locking the disk-based and");
    println!("mixed allocations suffer severe lock contention (low throughput, long");
    println!("response times), object-level locking removes the bottleneck, and the");
    println!("NVEM-resident allocation shows little contention even with page locks");
    println!("because locks are held only briefly.");
}
