//! Debit-Credit storage study: sweep the six database-allocation alternatives
//! of the paper (Fig. 4.2) and the FORCE/NOFORCE comparison (Fig. 4.3) at a
//! single arrival rate, printing a compact comparison table.
//!
//! ```bash
//! cargo run --release --example debit_credit_storage_study [TPS]
//! ```

use bufmgr::UpdateStrategy;
use tpsim::presets::{debit_credit_config, debit_credit_workload, DebitCreditStorage};
use tpsim::Simulation;

fn run(storage: DebitCreditStorage, force: bool, tps: f64) -> tpsim::SimulationReport {
    let mut config = debit_credit_config(storage, tps);
    config.warmup_ms = 1_000.0;
    config.measure_ms = 6_000.0;
    if force {
        config.buffer.update_strategy = UpdateStrategy::Force;
    }
    Simulation::new(config, debit_credit_workload(50)).run()
}

fn main() {
    let tps: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200.0);

    println!("Debit-Credit storage study at {tps} TPS (scaled-down database)\n");
    println!(
        "{:<38} {:>12} {:>12} {:>10}",
        "allocation", "NOFORCE [ms]", "FORCE [ms]", "thru [TPS]"
    );
    for storage in DebitCreditStorage::ALL {
        let noforce = run(storage, false, tps);
        let force = run(storage, true, tps);
        println!(
            "{:<38} {:>12.2} {:>12.2} {:>10.1}",
            storage.label(),
            noforce.response_time.mean,
            force.response_time.mean,
            noforce.throughput_tps
        );
    }

    println!();
    println!("Expected shape (paper §4.3/§4.4): disk-based is slowest and suffers most");
    println!("under FORCE; a write buffer roughly halves disk-based response times and");
    println!("nearly closes the FORCE/NOFORCE gap; SSD and NVEM residence approach the");
    println!("CPU-bound minimum of ≈5 ms.");
}
