//! Trace replay: generate the synthetic substitute for the paper's real-life
//! database trace (§4.6), print its statistics, replay it against different
//! second-level cache configurations, and show the resulting response times
//! and hit ratios.
//!
//! ```bash
//! cargo run --release --example trace_replay
//! ```

use dbmodel::SyntheticTraceSpec;
use simkernel::SimRng;
use tpsim::presets::{trace_config, trace_workload, TraceStorage};
use tpsim::Simulation;

fn main() {
    // Generate a moderately sized trace and report its statistics, mirroring
    // the description in §4.6 of the paper.
    let spec = SyntheticTraceSpec::scaled_down(4);
    let mut rng = SimRng::seed_from(7);
    let trace = spec.generate(&mut rng);
    println!("Synthetic trace statistics (stand-in for the paper's real-life trace):");
    println!("  transactions          : {}", trace.transactions.len());
    println!("  transaction types     : {}", trace.distinct_tx_types());
    println!("  page references       : {}", trace.total_references());
    println!("  distinct pages        : {}", trace.distinct_pages());
    println!("  files                 : {}", trace.files.len());
    println!(
        "  write references      : {:.2} %",
        100.0 * trace.write_references() as f64 / trace.total_references() as f64
    );
    println!(
        "  update transactions   : {:.1} %",
        100.0 * trace.update_transactions() as f64 / trace.transactions.len() as f64
    );
    println!(
        "  largest transaction   : {} references",
        trace.max_transaction_size()
    );
    println!();

    // Replay the trace with a 1,000-page main-memory buffer and different
    // second-level caches (the Fig. 4.7 setting, scaled down).
    let variants = [
        TraceStorage::MmOnly,
        TraceStorage::VolatileDiskCache(2_000),
        TraceStorage::NonVolatileDiskCache(2_000),
        TraceStorage::NvemCache(2_000),
    ];
    println!("Replaying at 30 TPS with a 1,000-page main-memory buffer:");
    println!(
        "{:<34} {:>12} {:>10} {:>10}",
        "second level", "resp [ms]", "MM hit", "2nd hit"
    );
    for storage in variants {
        let mut config = trace_config(1_000, storage, 30.0);
        config.warmup_ms = 1_000.0;
        config.measure_ms = 6_000.0;
        let workload = trace_workload(8, 7);
        let report = Simulation::new(config, workload).run();
        let second_level_hit = match storage {
            TraceStorage::VolatileDiskCache(_) | TraceStorage::NonVolatileDiskCache(_) => {
                report.disk_cache_hit_ratio(0)
            }
            _ => report.nvem_hit_ratio(),
        };
        println!(
            "{:<34} {:>12.1} {:>9.1}% {:>9.1}%",
            storage.label(),
            report.response_time.mean,
            report.mm_hit_ratio() * 100.0,
            second_level_hit * 100.0
        );
    }
    println!();
    println!("Expected shape (paper §4.6): for this read-dominated workload every");
    println!("second-level cache helps; NVEM caching gives the best hit ratios because");
    println!("it avoids double caching, while volatile and non-volatile disk caches");
    println!("perform almost identically.");
}
