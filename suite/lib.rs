//! Umbrella package for the TPSIM workspace.
//!
//! This crate exists so the top-level `tests/` (cross-crate integration
//! tests) and `examples/` (runnable studies) belong to a cargo package; it
//! simply re-exports the workspace crates.

pub use bufmgr;
pub use dbmodel;
pub use lockmgr;
pub use simkernel;
pub use storage;
pub use tpsim;
pub use tpsim_bench;
